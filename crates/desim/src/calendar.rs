//! The event calendar: a priority queue of timestamped events.
//!
//! Events at equal timestamps are delivered in scheduling (FIFO) order.
//! This tie-break is load-bearing: the paper's experiments compare routing
//! strategies under common random numbers, which is only meaningful if the
//! event order is a pure function of the schedule calls.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event popped from the calendar: when it fires, its id, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEntry<E> {
    /// Time at which the event fires.
    pub time: SimTime,
    /// The id handed out by [`Calendar::schedule`].
    pub id: EventId,
    /// The user payload.
    pub event: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq gives FIFO order among equal timestamps.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar over user-defined event payloads `E`.
///
/// ```
/// use idpa_desim::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "later");
/// cal.schedule(SimTime::new(1.0), "sooner");
/// assert_eq!(cal.pop().unwrap().event, "sooner");
/// assert_eq!(cal.pop().unwrap().event, "later");
/// assert!(cal.pop().is_none());
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `event` to fire at `time`. Returns an id that can be used
    /// with [`Calendar::cancel`].
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, event });
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when reached), `false` if
    /// it already fired, was already cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Lazy deletion: mark and skip on pop. We cannot cheaply know whether
        // the event already fired, so report true only on first insertion.
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// ones. Returns `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some(EventEntry {
                time: entry.time,
                id: EventId(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event, if any.
    ///
    /// Cancelled events at the head are dropped as a side effect, so this is
    /// `O(k log n)` for `k` cancelled heads but amortised cheap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(head.time);
        }
        None
    }

    /// Number of pending entries, **including** lazily cancelled ones.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// The sequence number the next [`Calendar::schedule`] call will use.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshot export: every heap entry (including lazily cancelled ones)
    /// as `(time, seq, event)`, sorted by `(time, seq)` — i.e. in the exact
    /// order [`Calendar::pop`] would deliver them. The sort makes the
    /// export a pure function of the pending set, independent of the heap's
    /// internal arrangement.
    #[must_use]
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|h| (h.time, h.seq, h.event.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        entries
    }

    /// Snapshot export: the lazily cancelled sequence numbers, sorted.
    #[must_use]
    pub fn snapshot_cancelled(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = self.cancelled.iter().copied().collect();
        seqs.sort_unstable();
        seqs
    }

    /// Rebuilds a calendar from a snapshot export: the heap entries with
    /// their original sequence numbers, the cancelled set, and the next
    /// sequence number to hand out. Pop order, cancellation semantics and
    /// future [`EventId`] allocation all match the snapshotted calendar
    /// exactly.
    #[must_use]
    pub fn from_snapshot(
        entries: Vec<(SimTime, u64, E)>,
        cancelled: Vec<u64>,
        next_seq: u64,
    ) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (time, seq, event) in entries {
            heap.push(HeapEntry { time, seq, event });
        }
        Calendar {
            heap,
            next_seq,
            cancelled: cancelled.into_iter().collect(),
        }
    }

    /// Number of pending live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn t(m: f64) -> SimTime {
        SimTime::new(m)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(t(3.0), 'c');
        cal.schedule(t(1.0), 'a');
        cal.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), "a");
        cal.schedule(t(2.0), "b");
        assert!(cal.cancel(a));
        assert_eq!(cal.pop().unwrap().event, "b");
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_twice_reports_false() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), ());
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_reports_false() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), "a");
        cal.schedule(t(2.0), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut cal = Calendar::new();
        let a = cal.schedule(t(1.0), ());
        cal.schedule(t(2.0), ());
        assert_eq!(cal.len(), 2);
        cal.cancel(a);
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(t(10.0), 10);
        cal.schedule(t(5.0), 5);
        assert_eq!(cal.pop().unwrap().event, 5);
        cal.schedule(t(7.0), 7);
        assert_eq!(cal.pop().unwrap().event, 7);
        assert_eq!(cal.pop().unwrap().event, 10);
    }
}
