//! Seed-derived deterministic fault injection.
//!
//! The paper's robustness claims — quality-driven routing reduces path
//! reformations under churn (Prop. 1), and the §5 payment scheme tolerates
//! cheating on the reverse confirmation path — are only meaningful under
//! partial failures. This module supplies those failures *deterministically*:
//! every fault decision is drawn from a position-keyed stream of the master
//! seed ([`crate::rng::StreamFactory::stream_indexed3`] keyed by
//! `(pair, connection, attempt)`), so the exact same crashes, drops, delays
//! and cheats fire no matter how many worker threads replicate the run or
//! whether probe state advances eagerly or lazily. A replication with faults
//! enabled is as bit-reproducible as one without.
//!
//! Four fault classes (the knobs of [`FaultConfig`]):
//!
//! * **forwarder crash mid-transmission** — the sending forwarder of an
//!   edge dies while relaying; its current session is truncated (it stays
//!   down until the churn schedule's next join), and the message is lost;
//! * **per-edge message drop and delay** — a hop loses the payload outright
//!   or adds exponential latency that can push the transmission past the
//!   initiator's retry timeout;
//! * **cheating forwarders** — a static, seed-derived subset of nodes that
//!   tamper with the §2.2 confirmation flowing back to `I`: either dropping
//!   it (so `I` never learns the connection completed) or corrupting the
//!   receipts of every hop downstream of themselves while keeping their own;
//! * **transient bank unavailability** — an alternating renewal process of
//!   outage windows during which settlement requests must wait.
//!
//! The fault layer is strictly additive: with every rate at zero
//! ([`FaultConfig::is_active`] false) no fault stream is ever touched and
//! simulations are bit-identical to a build without this module.

use crate::rng::{StreamFactory, Xoshiro256StarStar};
use rand::RngExt;

/// How the initiator responds to observed faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultResponse {
    /// The PR 3 baseline: fixed exponential backoff (`retry_timeout · 2^a`),
    /// retry over a fresh formation with no memory of what failed. The
    /// default, and the mode every fingerprint suite pins.
    #[default]
    Static,
    /// Adaptive response: failures feed a per-initiator reputation ledger
    /// that downweights and eventually suppresses suspects, validator cheat
    /// flags take effect mid-run, confirmed failures invalidate the
    /// suspect's probe-derived availability, and repeat offenders trigger
    /// an escalated reform-excluding-suspect retry with flat backoff.
    Adaptive,
}

/// Fault-injection rates and the retry protocol's parameters.
///
/// All-zero rates (the default) disable the subsystem entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-hop probability that the sending forwarder of an edge crashes
    /// mid-transmission (session truncation; the initiator never crashes).
    pub crash_rate: f64,
    /// Per-edge probability that the payload is dropped.
    pub drop_rate: f64,
    /// Per-edge probability of an extra transmission delay.
    pub delay_rate: f64,
    /// Mean of the exponential extra delay, in minutes.
    pub delay_mean: f64,
    /// Fraction of nodes that cheat on confirmations flowing back to `I`.
    /// Cheater status is a static per-node property drawn from the master
    /// seed, orthogonal to the good/malicious routing roles.
    pub cheat_fraction: f64,
    /// Probability that a cheating forwarder's act corrupts downstream
    /// receipts (detectable by §5 path validation) rather than dropping
    /// the confirmation outright.
    pub cheat_corrupt_share: f64,
    /// Long-run fraction of time the bank is unreachable (`[0, 1)`).
    pub bank_downtime: f64,
    /// Mean length of one bank outage window, in minutes.
    pub bank_outage_mean: f64,
    /// Per-settlement-flush probability that the bank process *crashes*
    /// (distinct from an outage: state is lost mid-write and recovery
    /// replays the WAL; requires durability to be enabled by the runner).
    pub bank_crash_rate: f64,
    /// Given a crash, probability that the final WAL record is torn
    /// (partially written) rather than cleanly cut.
    pub bank_crash_torn_share: f64,
    /// Bounded retries per message after the unconditional first attempt.
    pub max_retries: u32,
    /// Initiator's per-attempt timeout (minutes); attempt `a`'s backoff is
    /// `retry_timeout · 2^a`.
    pub retry_timeout: f64,
    /// How the initiator reacts to the faults it observes
    /// (`--fault-response`; [`FaultResponse::Static`] preserves baselines).
    pub response: FaultResponse,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            crash_rate: 0.0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_mean: 0.5,
            cheat_fraction: 0.0,
            cheat_corrupt_share: 0.5,
            bank_downtime: 0.0,
            bank_outage_mean: 15.0,
            bank_crash_rate: 0.0,
            bank_crash_torn_share: 0.5,
            max_retries: 3,
            retry_timeout: 2.0,
            response: FaultResponse::default(),
        }
    }
}

impl FaultConfig {
    /// Whether any fault class is enabled. When false, a [`FaultPlan`] is
    /// never built and no fault stream is consumed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0
            || self.drop_rate > 0.0
            || self.delay_rate > 0.0
            || self.cheat_fraction > 0.0
            || self.bank_downtime > 0.0
            || self.bank_crash_rate > 0.0
    }

    /// Checks field ranges; returns a description of the first violation.
    /// The bank-outage and bank-crash knobs go through the same
    /// probability gate as every other rate — one shared range check, so
    /// a new fault class cannot silently skip validation.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("crash_rate", self.crash_rate),
            ("drop_rate", self.drop_rate),
            ("delay_rate", self.delay_rate),
            ("cheat_fraction", self.cheat_fraction),
            ("cheat_corrupt_share", self.cheat_corrupt_share),
            ("bank_crash_rate", self.bank_crash_rate),
            ("bank_crash_torn_share", self.bank_crash_torn_share),
        ];
        for (name, v) in probs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability in [0, 1], got {v}"));
            }
        }
        if !(0.0..1.0).contains(&self.bank_downtime) {
            return Err(format!(
                "bank_downtime must be in [0, 1), got {}",
                self.bank_downtime
            ));
        }
        if self.delay_rate > 0.0 && self.delay_mean <= 0.0 {
            return Err(format!(
                "delay_mean must be positive when delays are enabled, got {}",
                self.delay_mean
            ));
        }
        if self.bank_downtime > 0.0 && self.bank_outage_mean <= 0.0 {
            return Err(format!(
                "bank_outage_mean must be positive when outages are enabled, got {}",
                self.bank_outage_mean
            ));
        }
        if self.is_active() && self.retry_timeout <= 0.0 {
            return Err(format!(
                "retry_timeout must be positive, got {}",
                self.retry_timeout
            ));
        }
        if self.max_retries > 100 {
            return Err(format!(
                "max_retries must be <= 100, got {}",
                self.max_retries
            ));
        }
        Ok(())
    }
}

/// What a cheating forwarder does to a confirmation passing through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheatAction {
    /// Swallow the confirmation: `I` never learns the connection completed.
    DropConfirmation,
    /// Forward the confirmation but corrupt the receipts of every hop
    /// strictly downstream of itself (keeping its own receipt valid).
    CorruptReceipts,
}

/// The sampled faults of one transmission attempt, in path-edge order
/// (`I→f_1`, `f_1→f_2`, …, `f_n→R`).
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionFaults {
    /// One entry per edge of the attempted path.
    pub edges: Vec<EdgeFault>,
}

impl TransmissionFaults {
    /// Total injected delay across edges (what the retry timeout sees).
    #[must_use]
    pub fn total_delay(&self) -> f64 {
        self.edges.iter().map(|e| e.delay).sum()
    }
}

/// Faults on a single path edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFault {
    /// The edge's sender crashes mid-transmission (never applied to the
    /// initiator's own first hop).
    pub crash: bool,
    /// The payload is dropped on this edge.
    pub dropped: bool,
    /// Extra transmission delay on this edge, minutes (0 when not delayed).
    pub delay: f64,
}

/// A fully deterministic fault schedule derived from the master seed.
///
/// Per-transmission faults are *not* precomputed: they are pure functions
/// of the `(pair, connection, attempt)` position, materialized on demand by
/// [`FaultPlan::sample_transmission`]. Only the static per-node cheater
/// assignment and the bank outage windows are sampled up front.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    streams: StreamFactory,
    cheaters: Vec<bool>,
    bank_outages: Vec<(f64, f64)>,
}

impl FaultPlan {
    /// Builds the plan for `n_nodes` peers over `horizon` minutes.
    #[must_use]
    pub fn new(cfg: FaultConfig, streams: StreamFactory, n_nodes: usize, horizon: f64) -> Self {
        let cheaters = (0..n_nodes)
            .map(|i| {
                cfg.cheat_fraction > 0.0 && {
                    let mut rng = streams.stream_indexed2("fault/cheater", i as u64, 0);
                    rng.random_range(0.0..1.0) < cfg.cheat_fraction
                }
            })
            .collect();
        let bank_outages = Self::sample_bank_outages(&cfg, &streams, horizon);
        FaultPlan {
            cfg,
            streams,
            cheaters,
            bank_outages,
        }
    }

    /// Alternating renewal process: Exp-distributed up gaps whose mean is
    /// chosen so the long-run down fraction matches `bank_downtime`, then
    /// Exp-distributed outages of mean `bank_outage_mean`. Windows extend
    /// past the horizon so post-horizon settlement still sees outages.
    fn sample_bank_outages(
        cfg: &FaultConfig,
        streams: &StreamFactory,
        horizon: f64,
    ) -> Vec<(f64, f64)> {
        if cfg.bank_downtime <= 0.0 {
            return Vec::new();
        }
        let mut rng = streams.stream("fault/bank");
        let mean_gap = cfg.bank_outage_mean * (1.0 - cfg.bank_downtime) / cfg.bank_downtime;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let limit = horizon + 20.0 * cfg.bank_outage_mean;
        while t < limit {
            t += exp_sample(&mut rng, mean_gap);
            let end = t + exp_sample(&mut rng, cfg.bank_outage_mean);
            if t >= limit {
                break;
            }
            out.push((t, end));
            t = end;
        }
        out
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        self.cfg()
    }

    fn cfg(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether `node` is a confirmation cheater.
    #[must_use]
    pub fn is_cheater(&self, node: usize) -> bool {
        self.cheaters.get(node).copied().unwrap_or(false)
    }

    /// The sorted indices of all injected cheaters.
    #[must_use]
    pub fn cheaters(&self) -> Vec<usize> {
        self.cheaters
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Samples the per-edge faults of one transmission attempt. A pure
    /// function of `(pair, connection, attempt)`: four uniforms are drawn
    /// per edge (crash, drop, delay gate, delay length) from the attempt's
    /// own keyed stream, so the draw order of other attempts — or other
    /// threads — cannot perturb it.
    #[must_use]
    pub fn sample_transmission(
        &self,
        pair: u64,
        connection: u64,
        attempt: u64,
        n_edges: usize,
    ) -> TransmissionFaults {
        let mut rng = self
            .streams
            .stream_indexed3("fault/tx", pair, connection, attempt);
        let edges = (0..n_edges)
            .map(|_| {
                let u_crash: f64 = rng.random_range(0.0..1.0);
                let u_drop: f64 = rng.random_range(0.0..1.0);
                let u_gate: f64 = rng.random_range(0.0..1.0);
                let u_len: f64 = rng.random_range(0.0..1.0);
                EdgeFault {
                    crash: u_crash < self.cfg.crash_rate,
                    dropped: u_drop < self.cfg.drop_rate,
                    delay: if u_gate < self.cfg.delay_rate {
                        -self.cfg.delay_mean * (1.0 - u_len).ln()
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        TransmissionFaults { edges }
    }

    /// The action a cheater at path position `hop` (1-based) takes on this
    /// attempt's confirmation. Position-keyed like
    /// [`FaultPlan::sample_transmission`]; `attempt` must stay below 256 so
    /// it packs losslessly beside the connection index.
    #[must_use]
    pub fn cheat_action(&self, pair: u64, connection: u64, attempt: u64, hop: u64) -> CheatAction {
        debug_assert!(attempt < 256, "attempt index overflows the packed key");
        let mut rng =
            self.streams
                .stream_indexed3("fault/confirm", pair, (connection << 8) | attempt, hop);
        if rng.random_range(0.0..1.0) < self.cfg.cheat_corrupt_share {
            CheatAction::CorruptReceipts
        } else {
            CheatAction::DropConfirmation
        }
    }

    /// Whether (and how) the bank process crashes during settlement flush
    /// number `flush`. A pure function of the flush index, drawn from its
    /// own keyed stream ("fault/bank-crash"), so adding or removing crash
    /// draws never perturbs any other fault class — the same discipline as
    /// [`FaultPlan::sample_transmission`]. Returns `None` when no crash
    /// fires (always, at rate zero: the stream is never touched).
    #[must_use]
    pub fn bank_crash(&self, flush: u64) -> Option<BankCrashDraw> {
        if self.cfg.bank_crash_rate <= 0.0 {
            return None;
        }
        let mut rng = self.streams.stream_indexed2("fault/bank-crash", flush, 0);
        let u_gate: f64 = rng.random_range(0.0..1.0);
        if u_gate >= self.cfg.bank_crash_rate {
            return None;
        }
        let u_pos = rng.next();
        let u_torn: f64 = rng.random_range(0.0..1.0);
        let u_tear = rng.next();
        Some(BankCrashDraw {
            u_pos,
            torn: u_torn < self.cfg.bank_crash_torn_share,
            u_tear,
        })
    }

    /// Whether the bank is reachable at time `t`.
    #[must_use]
    pub fn bank_available(&self, t: f64) -> bool {
        // Outage windows are few (sparse renewal process); linear scan with
        // early exit is cheaper than a partition point for typical counts.
        for &(start, end) in &self.bank_outages {
            if t < start {
                return true;
            }
            if t < end {
                return false;
            }
        }
        true
    }

    /// The earliest time `>= t` at which the bank is reachable (identity
    /// when it already is).
    #[must_use]
    pub fn next_bank_up(&self, t: f64) -> f64 {
        for &(start, end) in &self.bank_outages {
            if t < start {
                return t;
            }
            if t < end {
                return end;
            }
        }
        t
    }

    /// The sampled outage windows, ascending and disjoint.
    #[must_use]
    pub fn bank_outages(&self) -> &[(f64, f64)] {
        &self.bank_outages
    }
}

/// A seeded bank-crash decision for one settlement flush: *where* inside
/// the flush the primary dies and whether the write in flight is torn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankCrashDraw {
    /// Uniform draw locating the crash point: the runner reduces it
    /// modulo the flush's operation count to pick the op that dies.
    pub u_pos: u64,
    /// Whether the final record is torn (partially written) rather than
    /// cut at a record boundary.
    pub torn: bool,
    /// Uniform draw locating the tear: reduced modulo the record length
    /// to pick how many bytes of the final record survive.
    pub u_tear: u64,
}

/// Inverse-CDF exponential sample with the given mean (`u` uniform in
/// `[0, 1)` makes `1 - u` strictly positive, so the log is finite).
fn exp_sample(rng: &mut Xoshiro256StarStar, mean: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn active_cfg() -> FaultConfig {
        FaultConfig {
            crash_rate: 0.05,
            drop_rate: 0.1,
            delay_rate: 0.2,
            cheat_fraction: 0.25,
            bank_downtime: 0.2,
            ..FaultConfig::default()
        }
    }

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::new(active_cfg(), StreamFactory::new(seed), 40, 1440.0)
    }

    #[test]
    fn default_config_is_inactive_and_valid() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn each_fault_class_activates() {
        for cfg in [
            FaultConfig {
                crash_rate: 0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                drop_rate: 0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                delay_rate: 0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                cheat_fraction: 0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                bank_downtime: 0.1,
                ..FaultConfig::default()
            },
        ] {
            assert!(cfg.is_active());
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn invalid_configs_rejected_with_field_name() {
        let bad = FaultConfig {
            drop_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("drop_rate"));
        let bad = FaultConfig {
            bank_downtime: 1.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("bank_downtime"));
        let bad = FaultConfig {
            drop_rate: 0.1,
            retry_timeout: 0.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("retry_timeout"));
        let bad = FaultConfig {
            delay_rate: 0.1,
            delay_mean: 0.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("delay_mean"));
    }

    #[test]
    fn transmission_faults_are_position_stable() {
        let a = plan(9);
        let b = plan(9);
        // Materialization order must not matter.
        let x1 = a.sample_transmission(3, 7, 1, 5);
        let _interleaved = a.sample_transmission(4, 0, 0, 3);
        let x2 = b.sample_transmission(3, 7, 1, 5);
        assert_eq!(x1, x2);
        assert_eq!(x1.edges.len(), 5);
    }

    #[test]
    fn attempts_decorrelate() {
        let p = plan(10);
        let a0 = p.sample_transmission(0, 0, 0, 64);
        let a1 = p.sample_transmission(0, 0, 1, 64);
        assert_ne!(a0, a1);
    }

    #[test]
    fn fault_rates_are_respected_in_aggregate() {
        let p = plan(11);
        let mut drops = 0usize;
        let mut total = 0usize;
        for pair in 0..200u64 {
            let tf = p.sample_transmission(pair, 0, 0, 10);
            total += tf.edges.len();
            drops += tf.edges.iter().filter(|e| e.dropped).count();
        }
        let rate = drops as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.03, "empirical drop rate {rate}");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let p = FaultPlan::new(FaultConfig::default(), StreamFactory::new(1), 10, 1000.0);
        let tf = p.sample_transmission(0, 0, 0, 8);
        assert!(tf
            .edges
            .iter()
            .all(|e| !e.crash && !e.dropped && e.delay == 0.0));
        assert_eq!(tf.total_delay(), 0.0);
        assert!(p.cheaters().is_empty());
        assert!(p.bank_outages().is_empty());
        assert!(p.bank_available(500.0));
    }

    #[test]
    fn cheater_assignment_matches_fraction() {
        let p = FaultPlan::new(
            FaultConfig {
                cheat_fraction: 0.25,
                ..FaultConfig::default()
            },
            StreamFactory::new(5),
            1000,
            100.0,
        );
        let k = p.cheaters().len();
        assert!((150..350).contains(&k), "cheaters: {k}/1000");
        for &c in &p.cheaters() {
            assert!(p.is_cheater(c));
        }
        assert!(!p.is_cheater(5000), "out of range is not a cheater");
    }

    #[test]
    fn cheat_actions_cover_both_kinds_and_are_stable() {
        let p = plan(12);
        let mut drop = false;
        let mut corrupt = false;
        for hop in 1..100u64 {
            match p.cheat_action(0, 0, 0, hop) {
                CheatAction::DropConfirmation => drop = true,
                CheatAction::CorruptReceipts => corrupt = true,
            }
        }
        assert!(drop && corrupt);
        assert_eq!(p.cheat_action(1, 2, 3, 4), p.cheat_action(1, 2, 3, 4));
    }

    #[test]
    fn bank_outages_are_disjoint_and_match_downtime() {
        let p = FaultPlan::new(
            FaultConfig {
                bank_downtime: 0.3,
                bank_outage_mean: 10.0,
                ..FaultConfig::default()
            },
            StreamFactory::new(77),
            10,
            100_000.0,
        );
        let outages = p.bank_outages();
        assert!(!outages.is_empty());
        for w in outages.windows(2) {
            assert!(w[0].1 <= w[1].0, "windows must be disjoint and sorted");
        }
        let down: f64 = outages
            .iter()
            .map(|&(s, e)| e.min(100_000.0) - s.min(100_000.0))
            .sum();
        let frac = down / 100_000.0;
        assert!((frac - 0.3).abs() < 0.05, "downtime fraction {frac}");
    }

    #[test]
    fn bank_crash_draws_are_position_stable_and_rate_respecting() {
        let cfg = FaultConfig {
            bank_crash_rate: 0.3,
            bank_crash_torn_share: 0.5,
            ..FaultConfig::default()
        };
        assert!(cfg.is_active(), "crash class activates the fault layer");
        assert_eq!(cfg.validate(), Ok(()));
        let a = FaultPlan::new(cfg, StreamFactory::new(21), 10, 100.0);
        let b = FaultPlan::new(cfg, StreamFactory::new(21), 10, 100.0);
        let mut crashes = 0usize;
        let mut torn = 0usize;
        for flush in 0..2000u64 {
            let d = a.bank_crash(flush);
            assert_eq!(d, b.bank_crash(flush), "flush {flush} draw unstable");
            if let Some(d) = d {
                crashes += 1;
                torn += usize::from(d.torn);
            }
        }
        let rate = crashes as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.04, "empirical crash rate {rate}");
        let share = torn as f64 / crashes as f64;
        assert!((share - 0.5).abs() < 0.08, "empirical torn share {share}");
    }

    #[test]
    fn zero_crash_rate_never_draws() {
        let p = plan(14); // active plan, but bank_crash_rate defaults to 0
        for flush in 0..100u64 {
            assert_eq!(p.bank_crash(flush), None);
        }
    }

    #[test]
    fn bank_crash_rate_shares_the_probability_gate() {
        let bad = FaultConfig {
            bank_crash_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("bank_crash_rate"));
        let bad = FaultConfig {
            bank_crash_torn_share: -0.1,
            ..FaultConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .contains("bank_crash_torn_share"));
    }

    #[test]
    fn next_bank_up_is_consistent_with_availability() {
        let p = plan(13);
        for t in 0..1440 {
            let t = t as f64;
            let up = p.next_bank_up(t);
            assert!(up >= t);
            assert!(p.bank_available(up));
            if p.bank_available(t) {
                assert_eq!(up, t);
            }
        }
    }
}
