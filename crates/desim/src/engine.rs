//! The simulation engine: drives a [`Process`] from the event calendar.

use crate::calendar::{Calendar, EventEntry, EventId};
use crate::time::SimTime;

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The calendar ran out of events.
    Exhausted,
    /// The time horizon was reached; remaining events stay pending.
    Horizon,
    /// The process asked to stop via [`Control::Stop`].
    Requested,
    /// The configured event budget was spent (runaway-model backstop).
    EventBudget,
}

/// Flow-control returned by a [`Process`] after handling each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep running.
    #[default]
    Continue,
    /// Stop the simulation after this event.
    Stop,
}

/// A simulation model: receives events in timestamp order and schedules
/// follow-up events through the [`Engine`] handle it is given.
pub trait Process {
    /// The event payload type this model exchanges with the calendar.
    type Event;

    /// Handles one event, scheduling any follow-ups on `engine`.
    fn handle(&mut self, engine: &mut Engine<Self::Event>, event: Self::Event) -> Control;
}

/// The simulation engine: clock + calendar + run loop.
///
/// ```
/// use idpa_desim::{Engine, Process, SimTime, StopReason};
/// use idpa_desim::engine::Control;
///
/// /// Counts ticks up to 5, rescheduling itself each minute.
/// struct Ticker { count: u32 }
/// impl Process for Ticker {
///     type Event = ();
///     fn handle(&mut self, engine: &mut Engine<()>, _ev: ()) -> Control {
///         self.count += 1;
///         if self.count < 5 {
///             engine.schedule_in(1.0, ());
///         }
///         Control::Continue
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, ());
/// let mut ticker = Ticker { count: 0 };
/// let stop = engine.run(&mut ticker, None);
/// assert_eq!(stop, StopReason::Exhausted);
/// assert_eq!(ticker.count, 5);
/// assert_eq!(engine.now().minutes(), 4.0);
/// ```
pub struct Engine<E> {
    calendar: Calendar<E>,
    now: SimTime,
    events_handled: u64,
    event_budget: Option<u64>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine {
            calendar: Calendar::new(),
            now: SimTime::ZERO,
            events_handled: 0,
            event_budget: None,
        }
    }

    /// Rebuilds an engine from snapshotted parts: a calendar restored via
    /// [`Calendar::from_snapshot`], the clock, and the events-handled
    /// counter. The event budget is not part of a snapshot (it is a
    /// per-invocation backstop); set it again if needed.
    #[must_use]
    pub fn from_parts(calendar: Calendar<E>, now: SimTime, events_handled: u64) -> Self {
        Engine {
            calendar,
            now,
            events_handled,
            event_budget: None,
        }
    }

    /// Read access to the calendar, for snapshot export.
    #[must_use]
    pub fn calendar(&self) -> &Calendar<E> {
        &self.calendar
    }

    /// Caps the total number of events handled by [`Engine::run`]; a
    /// backstop against models that reschedule themselves forever.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Clears any event budget set by [`Engine::set_event_budget`].
    pub fn clear_event_budget(&mut self) {
        self.event_budget = None;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Schedules an event at an absolute time, which must not be in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={:?}, requested={:?}",
            self.now,
            time
        );
        self.calendar.schedule(time, event)
    }

    /// Schedules an event `delay` minutes from now (`delay >= 0`).
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventId {
        self.calendar.schedule(self.now + delay, event)
    }

    /// Cancels a pending event; see [`Calendar::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.calendar.cancel(id)
    }

    /// Live events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Runs `process` until the calendar empties, `horizon` is reached,
    /// the process requests a stop, or the event budget is exhausted.
    ///
    /// An event stamped exactly at `horizon` is still delivered; the first
    /// event strictly beyond it stops the run with the clock advanced to the
    /// horizon.
    pub fn run<P>(&mut self, process: &mut P, horizon: Option<SimTime>) -> StopReason
    where
        P: Process<Event = E>,
    {
        loop {
            if let Some(budget) = self.event_budget {
                if self.events_handled >= budget {
                    return StopReason::EventBudget;
                }
            }
            let Some(next_time) = self.calendar.peek_time() else {
                return StopReason::Exhausted;
            };
            if let Some(h) = horizon {
                if next_time > h {
                    self.now = h;
                    return StopReason::Horizon;
                }
            }
            let EventEntry { time, event, .. } =
                self.calendar.pop().expect("peek_time said non-empty");
            self.now = time;
            self.events_handled += 1;
            if process.handle(self, event) == Control::Stop {
                return StopReason::Requested;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick,
        Boom,
    }

    struct Model {
        ticks: u32,
        seen_boom: bool,
        stop_on_boom: bool,
        log: Vec<f64>,
    }

    impl Model {
        fn new() -> Self {
            Model {
                ticks: 0,
                seen_boom: false,
                stop_on_boom: false,
                log: Vec::new(),
            }
        }
    }

    impl Process for Model {
        type Event = Ev;
        fn handle(&mut self, engine: &mut Engine<Ev>, event: Ev) -> Control {
            self.log.push(engine.now().minutes());
            match event {
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        engine.schedule_in(1.0, Ev::Tick);
                    }
                    Control::Continue
                }
                Ev::Boom => {
                    self.seen_boom = true;
                    if self.stop_on_boom {
                        Control::Stop
                    } else {
                        Control::Continue
                    }
                }
            }
        }
    }

    #[test]
    fn runs_to_exhaustion() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Tick);
        let mut model = Model::new();
        assert_eq!(engine.run(&mut model, None), StopReason::Exhausted);
        assert_eq!(model.ticks, 3);
        assert_eq!(model.log, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(1.0), Ev::Tick);
        engine.schedule_at(SimTime::new(100.0), Ev::Boom);
        let mut model = Model::new();
        let stop = engine.run(&mut model, Some(SimTime::new(10.0)));
        assert_eq!(stop, StopReason::Horizon);
        assert!(!model.seen_boom);
        assert_eq!(engine.now().minutes(), 10.0);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn event_exactly_at_horizon_is_delivered() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(10.0), Ev::Boom);
        let mut model = Model::new();
        let stop = engine.run(&mut model, Some(SimTime::new(10.0)));
        assert!(model.seen_boom);
        assert_eq!(stop, StopReason::Exhausted);
    }

    #[test]
    fn process_can_request_stop() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(1.0), Ev::Boom);
        engine.schedule_at(SimTime::new(2.0), Ev::Tick);
        let mut model = Model::new();
        model.stop_on_boom = true;
        assert_eq!(engine.run(&mut model, None), StopReason::Requested);
        assert_eq!(model.ticks, 0);
    }

    #[test]
    fn event_budget_is_enforced() {
        struct Forever;
        impl Process for Forever {
            type Event = ();
            fn handle(&mut self, engine: &mut Engine<()>, _: ()) -> Control {
                engine.schedule_in(1.0, ());
                Control::Continue
            }
        }
        let mut engine = Engine::new();
        engine.set_event_budget(1000);
        engine.schedule_at(SimTime::ZERO, ());
        assert_eq!(engine.run(&mut Forever, None), StopReason::EventBudget);
        assert_eq!(engine.events_handled(), 1000);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct BadModel;
        impl Process for BadModel {
            type Event = ();
            fn handle(&mut self, engine: &mut Engine<()>, _: ()) -> Control {
                engine.schedule_at(SimTime::ZERO, ());
                Control::Continue
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(5.0), ());
        engine.run(&mut BadModel, None);
    }

    #[test]
    fn cancelled_event_not_delivered() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::new(1.0), Ev::Tick);
        let boom = engine.schedule_at(SimTime::new(2.0), Ev::Boom);
        engine.cancel(boom);
        let mut model = Model::new();
        engine.run(&mut model, None);
        assert!(!model.seen_boom);
    }
}
