//! Statistics collectors for simulation output.
//!
//! The paper reports means with 95% confidence intervals (Figs. 3–4),
//! empirical CDFs of per-node payoffs (Figs. 6–7) and ratio metrics
//! (Table 2). This module provides the corresponding estimators.

/// Streaming mean/variance via Welford's algorithm, plus min/max.
///
/// Numerically stable for long runs (no sum-of-squares catastrophic
/// cancellation), O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another collector into this one (parallel reduction step).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// 95% confidence interval for the mean (Student's t).
    #[must_use]
    pub fn ci95(&self) -> ConfidenceInterval {
        let half = if self.n < 2 {
            0.0
        } else {
            t_critical_95(self.n - 1) * self.std_err()
        };
        ConfidenceInterval {
            mean: self.mean(),
            half_width: half,
        }
    }
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Two-sided 95% critical value of Student's t with `df` degrees of freedom.
///
/// Exact table for small df, asymptotic normal value (1.96) beyond 120.
#[must_use]
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Empirical cumulative distribution function over a finite sample.
///
/// Used to reproduce the payoff CDFs of Figs. 6–7.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Ecdf {
    /// Creates an empty ECDF.
    #[must_use]
    pub fn new() -> Self {
        Ecdf::default()
    }

    /// Builds an ECDF from a sample.
    #[must_use]
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut e = Ecdf::new();
        for s in samples {
            e.push(s);
        }
        e
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.sorted.push(x);
        self.dirty = true;
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.dirty = false;
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of observations `<= x`. Empty sample yields 0.
    pub fn eval(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 <= q <= 1), by the nearest-rank method.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        self.ensure_sorted();
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The full step function as `(x, F(x))` pairs, one per observation —
    /// the series a CDF plot draws.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }
}

/// Batch-means estimator for steady-state simulation output.
///
/// A single long run's observations are autocorrelated, so the naive
/// standard error over raw observations is biased low. Batch means is the
/// classic remedy: split the stream into `n_batches` contiguous batches,
/// treat the batch averages as (approximately independent) observations,
/// and build the confidence interval over those.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: OnlineStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size (> 0).
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: OnlineStats::new(),
        }
    }

    /// Adds one observation; closes the current batch when full.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Completed batches so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches (the steady-state point estimate).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% confidence interval over batch means. At least two completed
    /// batches are required for a non-degenerate interval.
    #[must_use]
    pub fn ci95(&self) -> ConfidenceInterval {
        self.batches.ci95()
    }

    /// Observations in the (incomplete) current batch, discarded by the
    /// estimate — callers can check how much data is pending.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.current_count
    }
}

/// Fixed-width binned histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal bins over `[lo, hi)`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Counts at or above the upper edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_center, count)` pairs.
    #[must_use]
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of the classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &a_data {
            a.push(x);
            all.push(x);
        }
        for &x in &b_data {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), 2.0);
    }

    #[test]
    fn ci95_contains_true_mean_for_constant_data() {
        let mut s = OnlineStats::new();
        for _ in 0..10 {
            s.push(7.0);
        }
        let ci = s.ci95();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(7.0));
    }

    #[test]
    fn ci95_widths_shrink_with_sample_size() {
        // Same spread, more points => narrower CI.
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push(f64::from(i % 2));
        }
        for i in 0..1000 {
            large.push(f64::from(i % 2));
        }
        assert!(large.ci95().half_width < small.ci95().half_width);
    }

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t({df})={t} > t({})={prev}", df - 1);
            prev = t;
        }
        assert_eq!(t_critical_95(1_000_000), 1.96);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let mut e = Ecdf::from_samples([3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.0), 1.0); // nearest-rank clamps to first
    }

    #[test]
    fn ecdf_points_form_step_function() {
        let mut e = Ecdf::from_samples([10.0, 30.0, 20.0]);
        let pts = e.points();
        assert_eq!(pts, vec![(10.0, 1.0 / 3.0), (20.0, 2.0 / 3.0), (30.0, 1.0)]);
    }

    #[test]
    fn ecdf_push_after_eval_resorts() {
        let mut e = Ecdf::from_samples([1.0, 2.0]);
        assert_eq!(e.eval(1.5), 0.5);
        e.push(0.0);
        assert!((e.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let centers = h.centers();
        assert_eq!(centers.len(), 10);
        assert_eq!(centers[0], (0.5, 2)); // 0.0 and 0.5 in first bin
        assert_eq!(centers[5].1, 1); // 5.0
        assert_eq!(centers[9].1, 1); // 9.99
    }

    #[test]
    #[should_panic(expected = "quantile of empty sample")]
    fn quantile_of_empty_panics() {
        Ecdf::new().quantile(0.5);
    }

    #[test]
    fn batch_means_batches_correctly() {
        let mut bm = BatchMeans::new(4);
        for x in [1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0, 99.0] {
            bm.push(x);
        }
        assert_eq!(bm.batches(), 2);
        assert_eq!(bm.pending(), 1);
        // Batch means: 2.5 and 10.0.
        assert!((bm.mean() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn batch_means_widens_ci_for_correlated_streams() {
        // An alternating stream 0,1,0,1,... has tiny batch-to-batch
        // variance with even batch sizes (each batch averages 0.5) but a
        // naive per-observation CI that is far too tight for an AR-like
        // trending stream. Compare a trending stream: batch means expose
        // the trend as between-batch variance.
        let mut flat = BatchMeans::new(10);
        let mut trending = BatchMeans::new(10);
        for i in 0..200 {
            flat.push(f64::from(i % 2));
            trending.push(f64::from(i) / 100.0);
        }
        assert!(flat.ci95().half_width < trending.ci95().half_width);
    }

    #[test]
    fn batch_means_empty_is_degenerate() {
        let bm = BatchMeans::new(5);
        assert_eq!(bm.batches(), 0);
        assert_eq!(bm.mean(), 0.0);
        assert_eq!(bm.ci95().half_width, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn batch_means_rejects_zero_size() {
        let _ = BatchMeans::new(0);
    }
}
