//! Seeded property suite: the lazy probe set is **bit-identical** to the
//! eager estimator driven at every tick, across random churn schedules,
//! topologies, probing periods, replacement thresholds, and query times.
//!
//! The eager reference below is exactly what `idpa-sim` does in eager
//! per-node-RNG mode: at every tick `k·T < horizon`, every live node runs
//! `probe_round_seeded` and then (with a threshold) `maintain_seeded`.

use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use idpa_desim::SimTime;
use idpa_netmodel::NodeSchedule;
use idpa_overlay::probe_lazy::tick_time;
use idpa_overlay::{LazyProbeSet, NodeId, ProbeEstimator};
use rand::RngExt;

struct Case {
    period: f64,
    horizon: f64,
    schedules: Vec<NodeSchedule>,
    neighbors: Vec<Vec<NodeId>>,
    threshold: Option<u64>,
    streams: StreamFactory,
}

fn random_case(rng: &mut Xoshiro256StarStar) -> Case {
    let n = rng.random_range(4..12usize);
    let period = [0.5, 1.0, 2.5, 5.0][rng.random_range(0..4usize)];
    let horizon = period * rng.random_range(20..120u32) as f64;
    let schedules = (0..n)
        .map(|_| {
            let mut sessions = Vec::new();
            // Random alternating up/down walk; some nodes join late, some
            // sessions start or end exactly on a tick boundary to exercise
            // the [start, end) edge cases.
            let mut t = if rng.random_range(0..4u32) == 0 {
                0.0
            } else {
                rng.random_range(0.0..horizon * 0.5)
            };
            while t < horizon {
                let snap = rng.random_range(0..3u32) == 0;
                let up = if snap {
                    // Snap the duration so the boundary lands on a tick.
                    period * rng.random_range(1..30u32) as f64
                } else {
                    rng.random_range(period * 0.3..period * 25.0)
                };
                let end = (t + up).min(horizon + period);
                if end > t {
                    sessions.push((t, end));
                }
                t = end + rng.random_range(period * 0.2..period * 20.0);
            }
            NodeSchedule::from_sessions(sessions)
        })
        .collect();
    let degree = rng.random_range(1..4usize).min(n - 1);
    let neighbors = (0..n)
        .map(|i| {
            let mut set = Vec::new();
            while set.len() < degree {
                let v = NodeId(rng.random_range(0..n));
                if v.index() != i && !set.contains(&v) {
                    set.push(v);
                }
            }
            set
        })
        .collect();
    let threshold = match rng.random_range(0..3u32) {
        0 => None,
        _ => Some(rng.random_range(1..6u64)),
    };
    Case {
        period,
        horizon,
        schedules,
        neighbors,
        threshold,
        streams: StreamFactory::new(rng.next()),
    }
}

/// Drives eager estimators tick by tick, capturing full state snapshots at
/// each requested tick frontier (the state after all ticks `<= frontier`).
fn eager_reference(case: &Case, frontiers: &[u64]) -> Vec<Vec<ProbeEstimator>> {
    let n = case.schedules.len();
    let mut ests: Vec<ProbeEstimator> = (0..n)
        .map(|i| ProbeEstimator::new(NodeId(i), case.period, case.neighbors[i].clone()))
        .collect();
    let mut snapshots = Vec::with_capacity(frontiers.len());
    let mut next_frontier = 0usize;
    let mut k = 1u64;
    loop {
        let t = tick_time(k, case.period);
        let done = t >= case.horizon;
        while next_frontier < frontiers.len() && (done || k > frontiers[next_frontier]) {
            snapshots.push(ests.clone());
            next_frontier += 1;
        }
        if done {
            break;
        }
        let now = SimTime::new(t);
        for (i, est) in ests.iter_mut().enumerate() {
            if !case.schedules[i].is_up(now) {
                continue;
            }
            let schedules = &case.schedules;
            est.probe_round_seeded(&case.streams, |v| schedules[v.index()].is_up(now));
            if let Some(thr) = case.threshold {
                est.maintain_seeded(&case.streams, thr, n);
            }
        }
        k += 1;
    }
    while snapshots.len() < frontiers.len() {
        snapshots.push(ests.clone());
    }
    snapshots
}

#[test]
fn lazy_probe_set_is_bit_identical_to_eager_reference() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x1d9a);
    for case_idx in 0..256 {
        let case = random_case(&mut rng);
        let lazy = LazyProbeSet::new(
            case.period,
            case.horizon,
            case.schedules.clone(),
            case.neighbors.clone(),
            case.threshold,
            case.streams.clone(),
        );

        // Query at a few random times (sorted — the estimator is an
        // online process) plus the horizon.
        let mut times: Vec<f64> = (0..4)
            .map(|_| rng.random_range(0.0..case.horizon))
            .collect();
        times.push(case.horizon);
        times.sort_by(f64::total_cmp);
        // Frontier per query time: largest k with k·T <= t, capped at the
        // horizon tick.
        let frontiers: Vec<u64> = times
            .iter()
            .map(|&t| {
                let mut k = (t / case.period) as u64 + 2;
                while tick_time(k, case.period) > t {
                    k -= 1;
                }
                k.min(lazy.max_tick())
            })
            .collect();

        let snapshots = eager_reference(&case, &frontiers);
        for (q, (&t, eager_states)) in times.iter().zip(&snapshots).enumerate() {
            for (i, eager_state) in eager_states.iter().enumerate() {
                let lazy_est = lazy.estimator(NodeId(i), t);
                assert_eq!(
                    &lazy_est, eager_state,
                    "case {case_idx} query {q} (t={t}) node {i}: lazy != eager\n\
                     period={} horizon={} threshold={:?}",
                    case.period, case.horizon, case.threshold
                );
                // Derived quantities are bit-identical too.
                for &v in eager_state.neighbors() {
                    assert_eq!(
                        lazy.availability(NodeId(i), v, t).to_bits(),
                        eager_state.availability(v).to_bits(),
                        "case {case_idx} availability mismatch"
                    );
                }
            }
        }
    }
}

/// End-to-end: with an active fault plan (crashes, drops, delays,
/// cheaters), a lazy-probe simulation run stays bit-identical to the eager
/// one at any seed, and replication stays invariant to the thread count.
/// The crash overlay suppresses routing liveness only — never the probe
/// estimates the lazy set reconstructs analytically — which is the
/// invariant this test pins.
#[test]
fn probe_modes_agree_under_active_fault_plan() {
    use idpa_sim::experiments::Options;
    use idpa_sim::{FaultConfig, ProbeMode, ScenarioConfig, SimulationRun};

    let fault = FaultConfig {
        crash_rate: 0.05,
        drop_rate: 0.1,
        delay_rate: 0.25,
        cheat_fraction: 0.2,
        ..FaultConfig::default()
    };
    for seed in [11u64, 23, 31] {
        let mut cfg = ScenarioConfig {
            adversary_fraction: 0.2,
            neighbor_replacement_rounds: Some(3),
            ..ScenarioConfig::quick_test(seed)
        };
        cfg.fault = fault;
        let eager = SimulationRun::execute(ScenarioConfig {
            probe_mode: ProbeMode::Eager,
            ..cfg
        });
        let lazy = SimulationRun::execute(ScenarioConfig {
            probe_mode: ProbeMode::Lazy,
            ..cfg
        });
        assert_eq!(
            eager, lazy,
            "seed {seed}: lazy diverged from eager under an active fault plan"
        );
        assert!(
            eager.delivery_ratio < 1.0 || eager.retries_per_message > 0.0,
            "seed {seed}: the fault plan must actually bite for this test to mean anything"
        );
    }

    // Replicated faulty runs are bit-identical at any worker count.
    let folds: Vec<u64> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let opts = Options {
                reps: 3,
                quick: true,
                threads,
                fault,
                ..Options::default()
            };
            let runs = idpa_sim::experiments::replicate_base(&opts);
            runs.iter().fold(0u64, |acc, r| {
                acc ^ r
                    .delivery_ratio
                    .to_bits()
                    .wrapping_add(r.connections)
                    .rotate_left(9)
            })
        })
        .collect();
    assert_eq!(folds[0], folds[1], "faulty replication is thread-invariant");
}

/// Same cross-mode guarantee under `--fault-response adaptive`: crash-aware
/// probe invalidation is an overlay on the availability *read path*
/// (`ProbeInvalidation`), never a mutation of probe state, so eager and
/// lazy runs stay bit-identical even while invalidation masks, reputation
/// suppression, and the `w_r` quality term are all active — and adaptive
/// runs replay bit-identically from the master seed.
#[test]
fn probe_modes_agree_under_adaptive_fault_response() {
    use idpa_sim::{FaultConfig, FaultResponse, ProbeMode, ScenarioConfig, SimulationRun};

    let fault = FaultConfig {
        crash_rate: 0.05,
        drop_rate: 0.1,
        delay_rate: 0.25,
        cheat_fraction: 0.2,
        response: FaultResponse::Adaptive,
        ..FaultConfig::default()
    };
    for seed in [11u64, 23, 31] {
        let mut cfg = ScenarioConfig {
            adversary_fraction: 0.2,
            neighbor_replacement_rounds: Some(3),
            weights: (0.4, 0.4),
            reputation_weight: 0.2,
            ..ScenarioConfig::quick_test(seed)
        };
        cfg.fault = fault;
        cfg.validate().expect("adaptive scenario must validate");
        let eager = SimulationRun::execute(ScenarioConfig {
            probe_mode: ProbeMode::Eager,
            ..cfg
        });
        let lazy = SimulationRun::execute(ScenarioConfig {
            probe_mode: ProbeMode::Lazy,
            ..cfg
        });
        assert_eq!(
            eager, lazy,
            "seed {seed}: lazy diverged from eager under adaptive fault response"
        );
        let again = SimulationRun::execute(ScenarioConfig {
            probe_mode: ProbeMode::Lazy,
            ..cfg
        });
        assert_eq!(
            lazy, again,
            "seed {seed}: adaptive run must replay bit-identically"
        );
        assert!(
            eager.retries_per_message > 0.0 || eager.delivery_ratio < 1.0,
            "seed {seed}: the fault plan must bite for this test to mean anything"
        );
    }
}

#[test]
fn lazy_sync_all_matches_per_node_queries() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(777);
    for _ in 0..16 {
        let case = random_case(&mut rng);
        let lazy_query = LazyProbeSet::new(
            case.period,
            case.horizon,
            case.schedules.clone(),
            case.neighbors.clone(),
            case.threshold,
            case.streams.clone(),
        );
        for threads in [1usize, 2, 8] {
            let mut lazy_bulk = LazyProbeSet::new(
                case.period,
                case.horizon,
                case.schedules.clone(),
                case.neighbors.clone(),
                case.threshold,
                case.streams.clone(),
            );
            lazy_bulk.sync_all(case.horizon, threads);
            for i in 0..case.schedules.len() {
                assert_eq!(
                    lazy_bulk.estimator(NodeId(i), case.horizon),
                    lazy_query.estimator(NodeId(i), case.horizon),
                    "threads={threads} node={i}"
                );
            }
        }
    }
}
