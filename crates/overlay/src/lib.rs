//! # idpa-overlay — the P2P overlay substrate
//!
//! The paper's system model (§2.2–2.3): "a network of N nodes which
//! participate in anonymous forwarding of data packets. Each node s
//! maintains information about a fixed number d of neighbors which can be
//! used as potential forwarders" — the neighbor set `D(s)`. Each peer
//! estimates the availability of its neighbors *locally*, by **active
//! probing**: at the start of each probing period it checks each neighbor's
//! liveness and accumulates observed session time; availability is each
//! neighbor's share of total observed session time.
//!
//! This crate provides:
//! * [`NodeId`] / [`NodeKind`] — peer identities and good/malicious roles,
//! * [`Topology`] — the random fixed-degree neighbor relation `D(s)`,
//! * [`ProbeEstimator`] — the §2.3 availability estimator
//!   (`α_s(v) = t_s(v) / Σ_{u∈D(s)} t_s(u)`),
//! * [`LazyProbeSet`] — the event-driven lazy form of the same estimator:
//!   per-node cells materialized on demand from the analytic churn
//!   schedule, bit-identical to driving [`ProbeEstimator`] eagerly at
//!   every probe tick,
//! * [`ProbeInvalidation`] — the adaptive fault-response overlay that
//!   masks a relay's probe-derived availability after a confirmed
//!   transmission failure through it, identically for both probe modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod invalidate;
pub mod node;
pub mod probe;
pub mod probe_lazy;
pub mod topology;

pub use invalidate::ProbeInvalidation;
pub use node::{NodeId, NodeKind};
pub use probe::{ProbeEstimator, ProbeEstimatorState};
pub use probe_lazy::{cell_footprint, LazyProbeSet, ProbeCellState, ProbeCellsSnapshot, Residency};
pub use topology::Topology;
