//! Peer identities and roles.

use std::fmt;

/// Identifier of a peer: index into the system's node table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a peer in the threat model of §2.4 / §3.
///
/// The paper: "the primary objective of an adversary in an anonymous
/// forwarding system is to identify the end points of a communication and
/// therefore its routing decision is not aligned with any economic
/// incentive. We model an adversary's routing strategy as random routing."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A selfish-but-rational peer: maximises its utility, so it routes by
    /// edge/path quality.
    Good,
    /// An adversary: participates, but routes randomly (and, in the
    /// availability-attack variant, manipulates its own uptime).
    Malicious,
}

impl NodeKind {
    /// Whether this peer plays the utility-maximising strategy.
    #[must_use]
    pub fn is_good(self) -> bool {
        matches!(self, NodeKind::Good)
    }
}

/// Assigns roles to `n` nodes with exactly `⌊f·n⌉` malicious ones, chosen
/// from the *end* of a caller-shuffled permutation so that the workload
/// (which draws initiators/responders by id) is unaffected by `f` under
/// common random numbers.
#[must_use]
pub fn assign_roles(permutation: &[usize], f: f64) -> Vec<NodeKind> {
    assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
    let n = permutation.len();
    let n_bad = (f * n as f64).round() as usize;
    let mut kinds = vec![NodeKind::Good; n];
    for &idx in &permutation[n - n_bad..] {
        kinds[idx] = NodeKind::Malicious;
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn assign_roles_counts() {
        let perm: Vec<usize> = (0..40).collect();
        let kinds = assign_roles(&perm, 0.1);
        let bad = kinds.iter().filter(|k| !k.is_good()).count();
        assert_eq!(bad, 4);
    }

    #[test]
    fn assign_roles_zero_and_one() {
        let perm: Vec<usize> = (0..10).collect();
        assert!(assign_roles(&perm, 0.0).iter().all(|k| k.is_good()));
        assert!(assign_roles(&perm, 1.0).iter().all(|k| !k.is_good()));
    }

    #[test]
    fn assign_roles_uses_tail_of_permutation() {
        let perm = vec![5, 4, 3, 2, 1, 0];
        let kinds = assign_roles(&perm, 0.5);
        // Tail of the permutation is [2, 1, 0] => those ids are malicious.
        assert_eq!(kinds[0], NodeKind::Malicious);
        assert_eq!(kinds[1], NodeKind::Malicious);
        assert_eq!(kinds[2], NodeKind::Malicious);
        assert_eq!(kinds[3], NodeKind::Good);
        assert_eq!(kinds[5], NodeKind::Good);
    }

    #[test]
    fn growing_f_only_adds_malicious_nodes() {
        // Monotonicity: a node malicious at f=0.2 stays malicious at f=0.5.
        let perm: Vec<usize> = (0..40).rev().collect();
        let low = assign_roles(&perm, 0.2);
        let high = assign_roles(&perm, 0.5);
        for i in 0..40 {
            if low[i] == NodeKind::Malicious {
                assert_eq!(high[i], NodeKind::Malicious);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn assign_roles_rejects_bad_fraction() {
        let _ = assign_roles(&[0, 1], 1.5);
    }
}
