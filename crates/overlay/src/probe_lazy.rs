//! Event-driven lazy availability estimation.
//!
//! The eager [`ProbeEstimator`](crate::ProbeEstimator) is advanced by a
//! global sweep at every probe tick — O(N·d) work per tick whether or not
//! anyone reads the estimates. But the churn schedule is known analytically
//! (`NodeSchedule` holds each node's `[up, down)` intervals), so the state
//! an estimator would have reached at time `t` is computable in closed
//! form: the number of probe ticks `k·T ≤ t` falling inside an intersection
//! of the owner's and a neighbor's sessions gives the live-round count, and
//! the `rand(0, T)` first-sighting draw is reproducible because it is keyed
//! by (owner, slot, round) rather than consumed from a shared stream.
//!
//! [`LazyProbeSet`] therefore keeps one **cell** per node — the estimator
//! plus the last tick it was synced to — and only touches a cell when it is
//! *read* (a transmission queries availability or live neighbors) or when a
//! neighbor-replacement decision falls due. Catch-up is O(sessions) per
//! neighbor slot, amortized O(churn + queries) overall, instead of
//! O(N·d·horizon/T). Cells are independent, so bulk catch-up for disjoint
//! node sets runs deterministically through
//! [`idpa_desim::pool::parallel_map`].
//!
//! # Equivalence to the eager estimator
//!
//! For the same master seed the lazy cell is **bit-identical** to an eager
//! estimator driven with `probe_round_seeded`/`maintain_seeded` at every
//! tick `k·T < horizon`, because every quantity is derived the same way on
//! both paths:
//!
//! * tick times are `k as f64 * period` (a product, not a running sum), so
//!   both paths evaluate liveness at exactly the same f64 instants;
//! * session time is stored in closed form (`init + live_rounds · T`), so
//!   no f64 summation-order differences can arise;
//! * the first-sighting draw for (owner, slot, round) and the replacement
//!   candidate stream for (owner, round) are position-keyed, so skipping
//!   the rounds in between cannot shift them;
//! * replacement decisions are replayed at exactly the ticks where a slot
//!   crosses the silence threshold (computed in closed form from the
//!   schedule intersections), in slot order, via the *same*
//!   `maintain_seeded` code path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use idpa_desim::pool::parallel_map;
use idpa_desim::rng::StreamFactory;
use idpa_netmodel::NodeSchedule;

use crate::node::NodeId;
use crate::probe::{ProbeEstimator, ProbeEstimatorState};

/// The probe tick index `k` as a simulation time, computed as a product so
/// that eager scheduling and lazy reconstruction agree to the last bit.
#[inline]
#[must_use]
pub fn tick_time(k: u64, period: f64) -> f64 {
    k as f64 * period
}

/// Smallest `k ≥ 0` with `k·period ≥ t`.
fn first_tick_at_or_after(t: f64, period: f64) -> u64 {
    if t <= 0.0 {
        return 0;
    }
    let mut k = (t / period) as u64;
    while tick_time(k, period) < t {
        k += 1;
    }
    while k > 0 && tick_time(k - 1, period) >= t {
        k -= 1;
    }
    k
}

/// Largest `k ≥ 0` with `k·period < t` (`None` if `t ≤ 0`).
fn last_tick_before(t: f64, period: f64) -> Option<u64> {
    if t <= 0.0 {
        return None;
    }
    let mut k = (t / period).ceil() as u64 + 1;
    while k > 0 && tick_time(k, period) >= t {
        k -= 1;
    }
    while tick_time(k + 1, period) < t {
        k += 1;
    }
    (tick_time(k, period) < t).then_some(k)
}

/// Largest `k ≥ 0` with `k·period ≤ t` (0 if `t < 0`).
fn last_tick_at_or_before(t: f64, period: f64) -> u64 {
    if t < 0.0 {
        return 0;
    }
    let mut k = (t / period).ceil() as u64 + 1;
    while k > 0 && tick_time(k, period) > t {
        k -= 1;
    }
    while tick_time(k + 1, period) <= t {
        k += 1;
    }
    k
}

/// Ticks `k` with `start ≤ k·period < end` — i.e. the ticks at which a node
/// with session `[start, end)` is up, matching `NodeSchedule::is_up`
/// exactly — intersected with `(after, upto]`. Inclusive range, or `None`
/// if empty.
fn session_tick_range(
    start: f64,
    end: f64,
    period: f64,
    after: u64,
    upto: u64,
) -> Option<(u64, u64)> {
    let lo = first_tick_at_or_after(start, period).max(after + 1);
    let hi = last_tick_before(end, period)?.min(upto);
    (lo <= hi).then_some((lo, hi))
}

/// Index of the first session that can still contain a tick `> after`.
/// Sessions are sorted and disjoint, so ends are increasing; a session
/// ending at or before `after·T` cannot contain any tick `k·T` with
/// `k > after` (its ticks satisfy `k·T < e ≤ after·T`).
fn first_live_session(sessions: &[(f64, f64)], period: f64, after: u64) -> usize {
    let frontier = tick_time(after, period);
    sessions.partition_point(|&(_, e)| e <= frontier)
}

/// Number of ticks in `(after, upto]` at which `sessions` is up.
fn count_up_ticks(sessions: &[(f64, f64)], period: f64, after: u64, upto: u64) -> u64 {
    let upto_time = tick_time(upto, period);
    let mut n = 0;
    for &(s, e) in &sessions[first_live_session(sessions, period, after)..] {
        if s > upto_time {
            // Starts are sorted: no later session can contain a tick ≤ upto.
            break;
        }
        if let Some((lo, hi)) = session_tick_range(s, e, period, after, upto) {
            n += hi - lo + 1;
        }
    }
    n
}

/// The `p`-th (1-indexed) up tick of `sessions` in `(after, upto]`.
fn up_tick_at_position(
    sessions: &[(f64, f64)],
    period: f64,
    after: u64,
    upto: u64,
    p: u64,
) -> Option<u64> {
    debug_assert!(p >= 1);
    let upto_time = tick_time(upto, period);
    let mut remaining = p;
    for &(s, e) in &sessions[first_live_session(sessions, period, after)..] {
        if s > upto_time {
            break;
        }
        if let Some((lo, hi)) = session_tick_range(s, e, period, after, upto) {
            let c = hi - lo + 1;
            if remaining <= c {
                return Some(lo + remaining - 1);
            }
            remaining -= c;
        }
    }
    None
}

/// Visits every maximal run of ticks in `(after, upto]` at which *both*
/// schedules are up, as inclusive tick ranges in increasing order.
fn for_each_joint_range(
    own: &[(f64, f64)],
    nbr: &[(f64, f64)],
    period: f64,
    after: u64,
    upto: u64,
    mut f: impl FnMut(u64, u64),
) {
    let upto_time = tick_time(upto, period);
    let mut i = first_live_session(own, period, after);
    let mut j = first_live_session(nbr, period, after);
    while i < own.len() && j < nbr.len() {
        let (s1, e1) = own[i];
        let (s2, e2) = nbr[j];
        let lo_t = s1.max(s2);
        let hi_t = e1.min(e2);
        if lo_t > upto_time {
            // Starts are sorted, so max(s1, s2) only grows from here: no
            // later pair can intersect at a tick ≤ upto.
            break;
        }
        if lo_t < hi_t {
            if let Some((lo, hi)) = session_tick_range(lo_t, hi_t, period, after, upto) {
                f(lo, hi);
            }
        }
        if e1 <= e2 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Shared, immutable context of a [`LazyProbeSet`]: the analytic churn
/// schedules, tick geometry and the position-keyed randomness source.
#[derive(Debug, Clone)]
struct LazyCtx {
    period: f64,
    /// Probe ticks are `1..=max_tick` (all `k` with `0 < k·T < horizon`).
    max_tick: u64,
    n_nodes: usize,
    threshold: Option<u64>,
    streams: StreamFactory,
    /// Shared with the world (and any sibling probe sets): the analytic
    /// schedules are the one O(N) structure every lifecycle keeps resident.
    schedules: Arc<Vec<NodeSchedule>>,
}

/// Sentinel in a cell's due cache: the slot's due tick must be recomputed.
const DUE_UNKNOWN: u64 = u64::MAX;
/// Sentinel in a cell's due cache: the slot never falls due again before
/// the horizon.
const DUE_NEVER: u64 = u64::MAX - 1;

/// One node's shard of probe state: the estimator plus its sync frontier.
#[derive(Debug, Clone, PartialEq)]
struct ProbeCell {
    est: ProbeEstimator,
    /// All ticks `≤ synced_tick` have been applied to `est`.
    synced_tick: u64,
    /// Per-slot cache of the next replacement-due tick, computed against
    /// the full horizon ([`DUE_UNKNOWN`] = recompute, [`DUE_NEVER`] = no
    /// further due tick). A slot's absolute due tick is a pure function of
    /// the schedules and the slot's state trajectory, and [`advance`] only
    /// moves the frontier *along* that trajectory — so cached values
    /// survive plain advances and are dropped only after `maintain_seeded`
    /// may have replaced slots.
    due_cache: Vec<u64>,
}

impl Default for ProbeCell {
    fn default() -> Self {
        ProbeCell {
            est: ProbeEstimator::new(NodeId(0), 1.0, Vec::new()),
            synced_tick: 0,
            due_cache: Vec::new(),
        }
    }
}

/// Below this many ticks, catching up by replaying the probe rounds
/// directly is cheaper than the closed-form interval arithmetic (whose
/// per-slot session-range scans have a fixed cost worth paying only for
/// long idle gaps).
const REPLAY_WINDOW: u64 = 8;

/// Applies all probe rounds in ticks `(synced_tick, to]` to the cell in
/// closed form. Must not cross a replacement-due tick (callers segment at
/// those via [`next_due_tick`]).
fn advance(cell: &mut ProbeCell, ctx: &LazyCtx, to: u64) {
    let after = cell.synced_tick;
    if to <= after {
        return;
    }
    if to - after <= REPLAY_WINDOW {
        // Short catch-up: run the probe rounds tick by tick — the eager
        // code path itself, so equivalence is by construction.
        for k in (after + 1)..=to {
            let t = idpa_desim::SimTime::new(tick_time(k, ctx.period));
            if ctx.schedules[cell.est.owner.index()].is_up(t) {
                let sch = &ctx.schedules;
                cell.est
                    .probe_round_seeded(&ctx.streams, |v| sch[v.index()].is_up(t));
            }
        }
        cell.synced_tick = to;
        return;
    }
    let own = ctx.schedules[cell.est.owner.index()].sessions();
    let new_rounds = count_up_ticks(own, ctx.period, after, to);
    if new_rounds > 0 {
        for i in 0..cell.est.neighbors.len() {
            let nbr = ctx.schedules[cell.est.neighbors[i].index()].sessions();
            let mut live = 0u64;
            let mut first = None;
            let mut last = 0u64;
            for_each_joint_range(own, nbr, ctx.period, after, to, |lo, hi| {
                live += hi - lo + 1;
                if first.is_none() {
                    first = Some(lo);
                }
                last = hi;
            });
            if live == 0 {
                continue;
            }
            // Owner round numbers at the first/last joint tick.
            let r_last = cell.est.rounds + count_up_ticks(own, ctx.period, after, last);
            cell.est.last_alive_round[i] = r_last;
            if cell.est.ever_seen[i] {
                cell.est.live_rounds[i] += live;
            } else {
                let first = first.expect("live > 0 implies a first joint tick");
                let r_first = cell.est.rounds + count_up_ticks(own, ctx.period, after, first);
                cell.est.ever_seen[i] = true;
                cell.est.init_time[i] = crate::probe::init_session_draw(
                    &ctx.streams,
                    cell.est.owner,
                    i,
                    r_first,
                    ctx.period,
                );
                cell.est.live_rounds[i] = live - 1;
            }
        }
        cell.est.rounds += new_rounds;
    }
    cell.synced_tick = to;
}

/// First tick in `(synced_tick, upper]` at which slot `i` will be
/// replacement-due: the owner is up, and after probing, the slot's silence
/// `rounds − last_alive_round` reaches `thr`. `None` if no such tick.
fn slot_due(
    est: &ProbeEstimator,
    synced_tick: u64,
    ctx: &LazyCtx,
    i: usize,
    thr: u64,
    upper: u64,
) -> Option<u64> {
    debug_assert!(thr >= 1, "lazy maintenance needs threshold >= 1");
    let after = synced_tick;
    let own = ctx.schedules[est.owner.index()].sessions();
    let nbr = ctx.schedules[est.neighbors[i].index()].sessions();
    let gap0 = est.rounds - est.last_alive_round[i];
    // The slot falls due at the `due_pos`-th owner-up tick after the sync
    // frontier, unless a joint-live tick resets the silence gap first. A
    // tick that is itself joint-live is never due (the probe runs before
    // maintenance and clears the gap). The two-pointer walk below visits
    // the joint-live ranges in increasing order (the same order
    // [`for_each_joint_range`] produces) and stops at the first range
    // starting after the candidate due position, so a near due tick never
    // pays for the schedule's full tail.
    let mut due_pos = if gap0 >= thr { 1 } else { thr - gap0 };
    let upper_time = tick_time(upper, ctx.period);
    let mut oi = first_live_session(own, ctx.period, after);
    let mut ni = first_live_session(nbr, ctx.period, after);
    while oi < own.len() && ni < nbr.len() {
        let (s1, e1) = own[oi];
        let (s2, e2) = nbr[ni];
        let lo_t = s1.max(s2);
        let hi_t = e1.min(e2);
        if lo_t > upper_time {
            break;
        }
        if lo_t < hi_t {
            if let Some((lo, hi)) = session_tick_range(lo_t, hi_t, ctx.period, after, upper) {
                // Ticks lo..=hi are consecutive owner-up ticks (they lie
                // inside one owner session), all joint-live.
                let p_start = count_up_ticks(own, ctx.period, after, lo);
                let p_end = p_start + (hi - lo);
                if due_pos < p_start {
                    return up_tick_at_position(own, ctx.period, after, upper, due_pos);
                }
                due_pos = p_end + thr;
            }
        }
        if e1 <= e2 {
            oi += 1;
        } else {
            ni += 1;
        }
    }
    up_tick_at_position(own, ctx.period, after, upper, due_pos)
}

/// Earliest replacement-due tick over all slots strictly after the sync
/// frontier, up to the horizon. Served from the cell's per-slot due cache;
/// only slots invalidated since the last maintenance are recomputed, so
/// the repeated calls in [`sync_cell_slow`]'s advance/maintain loop (and
/// from [`LazyProbeSet::next_due_after`]-driven event scheduling) cost a
/// cheap `min` over ≤ degree cached values instead of a full closed-form
/// scan per call.
fn next_due_tick(cell: &mut ProbeCell, ctx: &LazyCtx, thr: u64) -> Option<u64> {
    let ProbeCell {
        est,
        synced_tick,
        due_cache,
    } = cell;
    due_cache.resize(est.neighbors.len(), DUE_UNKNOWN);
    let mut min = DUE_NEVER;
    for (i, slot) in due_cache.iter_mut().enumerate() {
        if *slot == DUE_UNKNOWN {
            *slot = slot_due(est, *synced_tick, ctx, i, thr, ctx.max_tick)
                .map_or(DUE_NEVER, |k| k.min(DUE_NEVER - 1));
        }
        min = min.min(*slot);
    }
    (min < DUE_NEVER).then_some(min)
}

/// Syncs the cell through tick `target`, replaying maintenance at exactly
/// the due ticks in between. The common case — the cell is already at the
/// target, because reads cluster at one simulation time — stays inline;
/// actual catch-up is the out-of-line slow path.
#[inline]
fn sync_cell(cell: &mut ProbeCell, ctx: &LazyCtx, target: u64) {
    if cell.synced_tick < target {
        sync_cell_slow(cell, ctx, target);
    }
}

fn sync_cell_slow(cell: &mut ProbeCell, ctx: &LazyCtx, target: u64) {
    let Some(thr) = ctx.threshold else {
        advance(cell, ctx, target);
        return;
    };
    while cell.synced_tick < target {
        match next_due_tick(cell, ctx, thr) {
            Some(k) if k <= target => {
                advance(cell, ctx, k);
                cell.est.maintain_seeded(&ctx.streams, thr, ctx.n_nodes);
                // Maintenance may have replaced slots; their trajectories
                // (and hence due ticks) are new.
                cell.due_cache.fill(DUE_UNKNOWN);
            }
            // Next due tick beyond the target (or never): plain advance,
            // cached dues stay valid for the next sync or query.
            _ => advance(cell, ctx, target),
        }
    }
}

/// Residency statistics of a probe-cell store: how much per-node state is
/// materialized, how much ever was, and what came back out. The byte
/// figures are estimates from [`cell_footprint`], not allocator readings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Residency {
    /// Cells resident right now.
    pub materialized: usize,
    /// High-water mark of simultaneously resident cells.
    pub peak: usize,
    /// Cells evicted back to their analytic summary.
    pub evictions: u64,
    /// Estimated bytes of currently resident cells.
    pub bytes: usize,
    /// High-water mark of the byte estimate.
    pub peak_bytes: usize,
}

/// Estimated resident footprint of one materialized probe cell with
/// `degree` neighbor slots: the per-slot arrays of the estimator
/// (neighbor id, init time, live rounds, last-alive round, ever-seen)
/// plus the due cache and the fixed cell struct. A *model*, deliberately a
/// pure function of the degree so that every probe-state representation
/// of the same scenario reports the same figure.
#[must_use]
pub fn cell_footprint(degree: usize) -> usize {
    std::mem::size_of::<ProbeCell>() + degree * (5 * std::mem::size_of::<u64>() + 1)
}

/// One sparse-store entry: the cell plus the tick it was last touched at
/// (the eviction clock).
#[derive(Debug, Clone)]
struct SparseCell {
    cell: ProbeCell,
    last_touch: u64,
}

/// The sparse cell store: cells exist only for touched nodes and can be
/// dropped again — the analytic schedule plus the position-keyed streams
/// *are* the compact summary, so a re-touch reconstructs the exact state
/// the cell would have held had it never been evicted.
#[derive(Debug, Clone)]
struct SparseCells {
    map: HashMap<usize, SparseCell>,
    /// Initial neighbor sets, shared with the topology owner: the seed
    /// every (re-)materialization starts its trajectory from.
    init_neighbors: Arc<Vec<Vec<NodeId>>>,
    stats: Residency,
}

impl SparseCells {
    /// Materializes (if absent) and syncs node `s`'s cell through `target`.
    fn touch(&mut self, s: NodeId, target: u64, ctx: &LazyCtx) -> &mut ProbeCell {
        if !self.map.contains_key(&s.index()) {
            let nbrs = self.init_neighbors[s.index()].clone();
            let footprint = cell_footprint(nbrs.len());
            let cell = ProbeCell {
                est: ProbeEstimator::new(s, ctx.period, nbrs),
                synced_tick: 0,
                due_cache: Vec::new(),
            };
            self.stats.materialized += 1;
            self.stats.peak = self.stats.peak.max(self.stats.materialized);
            self.stats.bytes += footprint;
            self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
            self.map.insert(
                s.index(),
                SparseCell {
                    cell,
                    last_touch: target,
                },
            );
        }
        let sc = self
            .map
            .get_mut(&s.index())
            .expect("cell materialized above");
        sc.last_touch = sc.last_touch.max(target);
        sync_cell(&mut sc.cell, ctx, target);
        &mut sc.cell
    }
}

/// How a [`LazyProbeSet`] holds its cells.
#[derive(Debug, Clone)]
enum CellStore {
    /// One pre-allocated cell per node — the historical O(N) layout.
    Dense(Vec<RefCell<ProbeCell>>),
    /// Cells materialize on first touch and are evicted when idle.
    Sparse(RefCell<SparseCells>),
}

/// Sharded, lazily-synced probe state for every node in the system.
///
/// Reads (`availability`, `with_neighbors`, …) sync the queried node's cell
/// on demand through interior mutability; [`LazyProbeSet::sync_all`] bulk-
/// syncs disjoint cells in parallel, bit-identically at any thread count.
///
/// Two storage layouts exist. The **dense** store ([`LazyProbeSet::new`])
/// pre-allocates one cell per node. The **sparse** store
/// ([`LazyProbeSet::new_sparse`]) allocates a cell the first time a node is
/// touched and can evict idle cells again ([`LazyProbeSet::evict_idle`]);
/// because a cell's state at tick `k` is a pure function of the schedules,
/// the initial neighbor sets and the position-keyed streams, an evicted
/// cell reconstructs **bit-identically** on re-touch, so the two layouts
/// answer every query with exactly the same values.
#[derive(Debug, Clone)]
pub struct LazyProbeSet {
    ctx: LazyCtx,
    cells: CellStore,
    /// Memo of the last `now → target tick` mapping: reads cluster at a
    /// single simulation time (all queries of one transmission), so the
    /// tick arithmetic is paid once per distinct `now`.
    tick_memo: std::cell::Cell<(f64, u64)>,
}

/// Validates the shared constructor inputs and derives the tick geometry.
fn check_inputs(period: f64, horizon: f64, threshold: Option<u64>) -> u64 {
    assert!(period > 0.0, "probing period must be positive");
    if let Some(t) = threshold {
        assert!(t >= 1, "replacement threshold must be >= 1");
    }
    last_tick_before(horizon, period).unwrap_or(0)
}

impl LazyProbeSet {
    /// Builds the lazy probe state over analytic churn `schedules` and the
    /// initial `neighbors` sets. Probe ticks are every `k·period < horizon`
    /// (`k ≥ 1`); `threshold` enables neighbor replacement after that many
    /// silent rounds (must be ≥ 1 — a threshold of 0 would replace a
    /// neighbor at the very tick it is observed alive).
    #[must_use]
    pub fn new(
        period: f64,
        horizon: f64,
        schedules: Vec<NodeSchedule>,
        neighbors: Vec<Vec<NodeId>>,
        threshold: Option<u64>,
        streams: StreamFactory,
    ) -> Self {
        Self::new_shared(
            period,
            horizon,
            Arc::new(schedules),
            neighbors,
            threshold,
            streams,
        )
    }

    /// [`LazyProbeSet::new`] over schedules already shared elsewhere (the
    /// world keeps them for routing liveness) — avoids the O(N) clone.
    #[must_use]
    pub fn new_shared(
        period: f64,
        horizon: f64,
        schedules: Arc<Vec<NodeSchedule>>,
        neighbors: Vec<Vec<NodeId>>,
        threshold: Option<u64>,
        streams: StreamFactory,
    ) -> Self {
        assert_eq!(
            schedules.len(),
            neighbors.len(),
            "one neighbor set per node"
        );
        let max_tick = check_inputs(period, horizon, threshold);
        let cells = neighbors
            .into_iter()
            .enumerate()
            .map(|(i, nbrs)| {
                RefCell::new(ProbeCell {
                    est: ProbeEstimator::new(NodeId(i), period, nbrs),
                    synced_tick: 0,
                    due_cache: Vec::new(),
                })
            })
            .collect();
        LazyProbeSet {
            ctx: LazyCtx {
                period,
                max_tick,
                n_nodes: schedules.len(),
                threshold,
                streams,
                schedules,
            },
            cells: CellStore::Dense(cells),
            tick_memo: std::cell::Cell::new((f64::NEG_INFINITY, 0)),
        }
    }

    /// The sparse-store variant: no cell exists until its node is first
    /// touched by a read or maintenance query, and idle cells can be
    /// evicted back to nothing ([`LazyProbeSet::evict_idle`]). Resident
    /// memory scales with the touched working set, never with `N`; query
    /// results are bit-identical to the dense store's.
    #[must_use]
    pub fn new_sparse(
        period: f64,
        horizon: f64,
        schedules: Arc<Vec<NodeSchedule>>,
        neighbors: Arc<Vec<Vec<NodeId>>>,
        threshold: Option<u64>,
        streams: StreamFactory,
    ) -> Self {
        assert_eq!(
            schedules.len(),
            neighbors.len(),
            "one neighbor set per node"
        );
        let max_tick = check_inputs(period, horizon, threshold);
        LazyProbeSet {
            ctx: LazyCtx {
                period,
                max_tick,
                n_nodes: schedules.len(),
                threshold,
                streams,
                schedules,
            },
            cells: CellStore::Sparse(RefCell::new(SparseCells {
                map: HashMap::new(),
                init_neighbors: neighbors,
                stats: Residency::default(),
            })),
            tick_memo: std::cell::Cell::new((f64::NEG_INFINITY, 0)),
        }
    }

    /// The probing period `T`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.ctx.period
    }

    /// The last probe tick before the horizon.
    #[must_use]
    pub fn max_tick(&self) -> u64 {
        self.ctx.max_tick
    }

    /// The tick the state at time `now` reflects: all ticks `k·T ≤ now`
    /// (clamped to the horizon).
    fn target_tick(&self, now: f64) -> u64 {
        let (memo_now, memo_tick) = self.tick_memo.get();
        if memo_now == now {
            return memo_tick;
        }
        let tick = last_tick_at_or_before(now, self.ctx.period).min(self.ctx.max_tick);
        self.tick_memo.set((now, tick));
        tick
    }

    /// Syncs node `s`'s cell through `now` and hands it to `f`. Under the
    /// sparse store this is the touch point: the cell materializes here if
    /// absent, and its eviction clock advances to the queried tick.
    fn with_cell_mut<R>(
        &self,
        s: NodeId,
        now: f64,
        f: impl FnOnce(&mut ProbeCell, &LazyCtx) -> R,
    ) -> R {
        let target = self.target_tick(now);
        let ctx = &self.ctx;
        match &self.cells {
            CellStore::Dense(cells) => {
                let mut cell = cells[s.index()].borrow_mut();
                sync_cell(&mut cell, ctx, target);
                f(&mut cell, ctx)
            }
            CellStore::Sparse(store) => {
                let mut store = store.borrow_mut();
                f(store.touch(s, target, ctx), ctx)
            }
        }
    }

    /// Read-only flavor of [`LazyProbeSet::with_cell_mut`].
    fn with_cell<R>(&self, s: NodeId, now: f64, f: impl FnOnce(&ProbeCell) -> R) -> R {
        self.with_cell_mut(s, now, |cell, _| f(cell))
    }

    /// Syncs node `s` through every tick at or before `now`.
    pub fn sync_node(&self, s: NodeId, now: f64) {
        self.with_cell(s, now, |_| ());
    }

    /// `α_s(v)` as of time `now` (syncs `s` on demand).
    #[must_use]
    pub fn availability(&self, s: NodeId, v: NodeId, now: f64) -> f64 {
        self.with_cell(s, now, |cell| cell.est.availability(v))
    }

    /// `t_s(v)` as of time `now` (syncs `s` on demand).
    #[must_use]
    pub fn session_time(&self, s: NodeId, v: NodeId, now: f64) -> f64 {
        self.with_cell(s, now, |cell| cell.est.session_time(v))
    }

    /// Calls `f` with `s`'s current neighbor set as of `now` (syncs `s` on
    /// demand — replacements up to `now` are visible).
    pub fn with_neighbors<R>(&self, s: NodeId, now: f64, f: impl FnOnce(&[NodeId]) -> R) -> R {
        self.with_cell(s, now, |cell| f(cell.est.neighbors()))
    }

    /// A snapshot of `s`'s estimator as of `now` — the exact state an eager
    /// [`ProbeEstimator`] driven with `probe_round_seeded`/`maintain_seeded`
    /// at every tick would hold.
    #[must_use]
    pub fn estimator(&self, s: NodeId, now: f64) -> ProbeEstimator {
        self.with_cell(s, now, |cell| cell.est.clone())
    }

    /// The time of the next tick strictly after `now` at which some slot of
    /// `s` falls replacement-due (`None` without a threshold, or if no slot
    /// ever falls due again before the horizon). Syncs `s` to `now` first,
    /// so the answer reflects all replacements up to `now`.
    #[must_use]
    pub fn next_due_after(&self, s: NodeId, now: f64) -> Option<f64> {
        let thr = self.ctx.threshold?;
        self.with_cell_mut(s, now, |cell, ctx| {
            next_due_tick(cell, ctx, thr).map(|k| tick_time(k, ctx.period))
        })
    }

    /// Syncs every *resident* cell through `now`; dense stores fan the work
    /// out over `threads` workers. Cells are disjoint and each sync is a
    /// pure function of (cell, schedules, target), so the result is
    /// bit-identical at any thread count and any store iteration order.
    pub fn sync_all(&mut self, now: f64, threads: usize) {
        let target = self.target_tick(now);
        let ctx = &self.ctx;
        match &mut self.cells {
            CellStore::Dense(cells) => {
                let taken: Vec<ProbeCell> = cells
                    .iter_mut()
                    .map(|c| std::mem::take(c.get_mut()))
                    .collect();
                let synced = parallel_map(threads, taken.len(), |i| {
                    let mut cell = taken[i].clone();
                    sync_cell(&mut cell, ctx, target);
                    cell
                });
                for (slot, cell) in cells.iter_mut().zip(synced) {
                    *slot.get_mut() = cell;
                }
            }
            CellStore::Sparse(store) => {
                for sc in store.get_mut().map.values_mut() {
                    sync_cell(&mut sc.cell, ctx, target);
                }
            }
        }
    }

    /// Evicts cells last touched more than `idle_ticks` probe ticks before
    /// `now` back to their analytic summary. Sparse store only — a dense
    /// store owns every cell for the run's lifetime, and the call is a
    /// no-op returning 0. Returns the number evicted.
    ///
    /// Eviction is **value-invisible**: which cells are resident never
    /// affects any query result (a later touch reconstructs the dropped
    /// cell bit-identically from the schedules and streams), so the sweep
    /// cadence is free to be a pure policy choice.
    pub fn evict_idle(&self, now: f64, idle_ticks: u64) -> usize {
        let CellStore::Sparse(store) = &self.cells else {
            return 0;
        };
        let cutoff = self.target_tick(now).saturating_sub(idle_ticks);
        let mut store = store.borrow_mut();
        let SparseCells { map, stats, .. } = &mut *store;
        let before = map.len();
        map.retain(|_, sc| {
            let keep = sc.last_touch >= cutoff;
            if !keep {
                stats.bytes -= cell_footprint(sc.cell.est.neighbors.len());
            }
            keep
        });
        let evicted = before - map.len();
        stats.materialized -= evicted;
        stats.evictions += evicted as u64;
        evicted
    }

    /// Residency statistics of the cell store. A dense store reports every
    /// cell permanently resident (materialized = peak = N, no evictions)
    /// using the same [`cell_footprint`] model, so the figure is comparable
    /// across storage layouts.
    #[must_use]
    pub fn residency(&self) -> Residency {
        match &self.cells {
            CellStore::Dense(cells) => {
                let bytes: usize = cells
                    .iter()
                    .map(|c| cell_footprint(c.borrow().est.neighbors.len()))
                    .sum();
                Residency {
                    materialized: cells.len(),
                    peak: cells.len(),
                    evictions: 0,
                    bytes,
                    peak_bytes: bytes,
                }
            }
            CellStore::Sparse(store) => store.borrow().stats,
        }
    }

    /// Snapshot export of the mutable cell state. Pure caches (the per-slot
    /// due cache, the tick memo) are *not* captured — they are recomputed
    /// on demand after [`LazyProbeSet::restore_cells`], and every cached
    /// value is a pure function of the state that *is* captured.
    #[must_use]
    pub fn snapshot_cells(&self) -> ProbeCellsSnapshot {
        match &self.cells {
            CellStore::Dense(cells) => ProbeCellsSnapshot::Dense(
                cells
                    .iter()
                    .map(|c| {
                        let c = c.borrow();
                        ProbeCellState {
                            est: c.est.snapshot_state(),
                            synced_tick: c.synced_tick,
                        }
                    })
                    .collect(),
            ),
            CellStore::Sparse(store) => {
                let store = store.borrow();
                let mut cells: Vec<(usize, ProbeCellState, u64)> = store
                    .map
                    .iter()
                    .map(|(&i, sc)| {
                        (
                            i,
                            ProbeCellState {
                                est: sc.cell.est.snapshot_state(),
                                synced_tick: sc.cell.synced_tick,
                            },
                            sc.last_touch,
                        )
                    })
                    .collect();
                cells.sort_unstable_by_key(|&(i, _, _)| i);
                ProbeCellsSnapshot::Sparse {
                    cells,
                    stats: store.stats,
                }
            }
        }
    }

    /// Overwrites the mutable cell state with a
    /// [`LazyProbeSet::snapshot_cells`] export. The probe set must have
    /// been freshly constructed with the same configuration (period,
    /// horizon, schedules, initial neighbor sets, threshold, streams) —
    /// resume rebuilds those deterministically and only the trajectory
    /// state comes from the snapshot.
    ///
    /// Every field of the snapshot is validated *before* any mutation: on
    /// `Err`, the probe set is untouched. Never panics.
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found (store-kind
    /// mismatch, length mismatch, out-of-range indices, non-parallel
    /// estimator arrays, inconsistent residency stats, …).
    pub fn restore_cells(&mut self, snap: ProbeCellsSnapshot) -> Result<(), &'static str> {
        match (&mut self.cells, snap) {
            (CellStore::Dense(cells), ProbeCellsSnapshot::Dense(states)) => {
                if states.len() != cells.len() {
                    return Err("dense probe snapshot has wrong cell count");
                }
                for (i, state) in states.iter().enumerate() {
                    check_cell_state(&self.ctx, NodeId(i), state)?;
                }
                for (slot, state) in cells.iter_mut().zip(states) {
                    *slot.get_mut() = ProbeCell {
                        est: ProbeEstimator::from_snapshot(state.est),
                        synced_tick: state.synced_tick,
                        due_cache: Vec::new(),
                    };
                }
            }
            (CellStore::Sparse(store), ProbeCellsSnapshot::Sparse { cells, stats }) => {
                let ctx = &self.ctx;
                let mut bytes = 0usize;
                let mut prev: Option<usize> = None;
                for (node, state, _) in &cells {
                    if *node >= ctx.n_nodes {
                        return Err("sparse probe cell node out of range");
                    }
                    if prev.is_some_and(|p| p >= *node) {
                        return Err("sparse probe cells not strictly sorted");
                    }
                    prev = Some(*node);
                    check_cell_state(ctx, NodeId(*node), state)?;
                    bytes += cell_footprint(state.est.neighbors.len());
                }
                if stats.materialized != cells.len()
                    || stats.bytes != bytes
                    || stats.peak < stats.materialized
                    || stats.peak_bytes < stats.bytes
                {
                    return Err("sparse probe residency stats inconsistent");
                }
                let mut map = HashMap::new();
                for (node, state, last_touch) in cells {
                    map.insert(
                        node,
                        SparseCell {
                            cell: ProbeCell {
                                est: ProbeEstimator::from_snapshot(state.est),
                                synced_tick: state.synced_tick,
                                due_cache: Vec::new(),
                            },
                            last_touch,
                        },
                    );
                }
                let inner = store.get_mut();
                inner.map = map;
                inner.stats = stats;
            }
            _ => return Err("probe cell store kind mismatch"),
        }
        self.tick_memo = std::cell::Cell::new((f64::NEG_INFINITY, 0));
        Ok(())
    }
}

/// Validates one cell state against the probe set's immutable context —
/// everything the sync and due-tick machinery would otherwise trust (and
/// index arrays or subtract counters with).
fn check_cell_state(
    ctx: &LazyCtx,
    owner: NodeId,
    state: &ProbeCellState,
) -> Result<(), &'static str> {
    let e = &state.est;
    if e.owner != owner {
        return Err("probe cell owner mismatch");
    }
    if e.period.to_bits() != ctx.period.to_bits() {
        return Err("probe cell period mismatch");
    }
    let n = e.neighbors.len();
    if e.init_time.len() != n
        || e.live_rounds.len() != n
        || e.ever_seen.len() != n
        || e.last_alive_round.len() != n
    {
        return Err("probe estimator arrays not parallel");
    }
    if e.neighbors.iter().any(|v| v.index() >= ctx.n_nodes) {
        return Err("probe neighbor out of range");
    }
    if e.init_time.iter().any(|t| !t.is_finite() || *t < 0.0) {
        return Err("probe init time invalid");
    }
    if e.last_alive_round.iter().any(|&r| r > e.rounds) {
        return Err("probe last-alive round ahead of round counter");
    }
    if state.synced_tick > ctx.max_tick {
        return Err("probe synced tick beyond horizon");
    }
    Ok(())
}

/// Snapshot of one probe cell: the estimator trajectory plus the sync
/// frontier. Pure caches are excluded by design.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeCellState {
    /// The estimator's full mutable state.
    pub est: ProbeEstimatorState,
    /// All ticks `≤ synced_tick` have been applied to the estimator.
    pub synced_tick: u64,
}

/// Snapshot export of a [`LazyProbeSet`]'s cell store, mirroring its two
/// storage layouts.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeCellsSnapshot {
    /// One cell per node, indexed by node.
    Dense(Vec<ProbeCellState>),
    /// Only the resident cells, sorted by node index.
    Sparse {
        /// `(node index, cell state, last-touch tick)`, strictly sorted by
        /// node index.
        cells: Vec<(usize, ProbeCellState, u64)>,
        /// The residency statistics at snapshot time (peaks and eviction
        /// counts are part of the reported run result, so they must
        /// survive a resume).
        stats: Residency,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_helpers_agree_with_is_up_semantics() {
        use idpa_desim::SimTime;
        let sched = NodeSchedule::from_sessions(vec![(2.5, 10.0), (12.0, 13.0)]);
        let period = 2.5;
        for k in 1..8u64 {
            let t = tick_time(k, period);
            let counted = count_up_ticks(sched.sessions(), period, k - 1, k) == 1;
            assert_eq!(sched.is_up(SimTime::new(t)), counted, "tick {k} at t={t}");
        }
    }

    #[test]
    fn boundary_ticks_land_like_is_up() {
        // A session starting exactly on a tick includes it; one ending
        // exactly on a tick excludes it ([start, end) semantics).
        let period = 5.0;
        let sessions = [(5.0, 20.0)];
        assert_eq!(session_tick_range(5.0, 20.0, period, 0, 100), Some((1, 3)));
        assert_eq!(count_up_ticks(&sessions, period, 0, 100), 3);
    }

    #[test]
    fn last_tick_before_handles_exact_multiples() {
        assert_eq!(last_tick_before(10.0, 5.0), Some(1));
        assert_eq!(last_tick_before(10.1, 5.0), Some(2));
        assert_eq!(last_tick_before(0.0, 5.0), None);
        assert_eq!(last_tick_at_or_before(10.0, 5.0), 2);
        assert_eq!(last_tick_at_or_before(9.9, 5.0), 1);
    }

    #[test]
    fn lazy_matches_eager_simple_two_node_case() {
        let streams = StreamFactory::new(17);
        let period = 5.0;
        let horizon = 100.0;
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 100.0)]),
            NodeSchedule::from_sessions(vec![(12.0, 40.0), (60.0, 80.0)]),
        ];
        let neighbors = vec![vec![NodeId(1)], vec![NodeId(0)]];

        // Eager reference.
        let mut eager: Vec<ProbeEstimator> = (0..2)
            .map(|i| ProbeEstimator::new(NodeId(i), period, neighbors[i].clone()))
            .collect();
        let mut k = 1u64;
        while tick_time(k, period) < horizon {
            let t = idpa_desim::SimTime::new(tick_time(k, period));
            for i in 0..2 {
                if schedules[i].is_up(t) {
                    let sch = &schedules;
                    eager[i].probe_round_seeded(&streams, |v| sch[v.index()].is_up(t));
                }
            }
            k += 1;
        }

        let lazy = LazyProbeSet::new(period, horizon, schedules, neighbors, None, streams);
        for (i, e) in eager.iter().enumerate() {
            assert_eq!(&lazy.estimator(NodeId(i), horizon), e, "node {i}");
        }
    }

    #[test]
    fn queries_at_intermediate_times_see_partial_state() {
        let streams = StreamFactory::new(5);
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 50.0)]),
            NodeSchedule::from_sessions(vec![(0.0, 50.0)]),
        ];
        let lazy = LazyProbeSet::new(
            5.0,
            50.0,
            schedules,
            vec![vec![NodeId(1)], vec![NodeId(0)]],
            None,
            streams,
        );
        assert_eq!(lazy.session_time(NodeId(0), NodeId(1), 0.0), 0.0);
        let early = lazy.session_time(NodeId(0), NodeId(1), 12.0);
        let late = lazy.session_time(NodeId(0), NodeId(1), 40.0);
        assert!(early > 0.0);
        assert!(late > early, "early={early} late={late}");
    }

    #[test]
    fn sync_all_is_thread_count_invariant() {
        let streams = StreamFactory::new(23);
        let n = 12;
        let schedules: Vec<NodeSchedule> = (0..n)
            .map(|i| {
                let s = f64::from(i) * 1.7;
                NodeSchedule::from_sessions(vec![(s, s + 37.0), (s + 50.0, s + 90.0)])
            })
            .collect();
        let neighbors: Vec<Vec<NodeId>> = (0..n as usize)
            .map(|i| vec![NodeId((i + 1) % n as usize), NodeId((i + 3) % n as usize)])
            .collect();
        let build = || {
            LazyProbeSet::new(
                1.0,
                120.0,
                schedules.clone(),
                neighbors.clone(),
                Some(4),
                streams.clone(),
            )
        };
        let mut one = build();
        one.sync_all(120.0, 1);
        for threads in [2, 8] {
            let mut multi = build();
            multi.sync_all(120.0, threads);
            for i in 0..n as usize {
                assert_eq!(
                    one.estimator(NodeId(i), 120.0),
                    multi.estimator(NodeId(i), 120.0),
                    "node {i} threads {threads}"
                );
            }
        }
    }

    fn staggered_world(n: usize) -> (Vec<NodeSchedule>, Vec<Vec<NodeId>>) {
        let schedules: Vec<NodeSchedule> = (0..n)
            .map(|i| {
                let s = i as f64 * 1.7;
                NodeSchedule::from_sessions(vec![(s, s + 37.0), (s + 50.0, s + 90.0)])
            })
            .collect();
        let neighbors: Vec<Vec<NodeId>> = (0..n)
            .map(|i| vec![NodeId((i + 1) % n), NodeId((i + 3) % n)])
            .collect();
        (schedules, neighbors)
    }

    #[test]
    fn sparse_store_matches_dense_queries() {
        let streams = StreamFactory::new(31);
        let (schedules, neighbors) = staggered_world(12);
        let dense = LazyProbeSet::new(
            1.0,
            120.0,
            schedules.clone(),
            neighbors.clone(),
            Some(4),
            streams.clone(),
        );
        let sparse = LazyProbeSet::new_sparse(
            1.0,
            120.0,
            Arc::new(schedules),
            Arc::new(neighbors),
            Some(4),
            streams,
        );
        for now in [0.0, 13.0, 55.5, 120.0] {
            for i in 0..12 {
                assert_eq!(
                    dense.estimator(NodeId(i), now),
                    sparse.estimator(NodeId(i), now),
                    "node {i} at t={now}"
                );
                assert_eq!(
                    dense.next_due_after(NodeId(i), now),
                    sparse.next_due_after(NodeId(i), now),
                    "due of node {i} at t={now}"
                );
            }
        }
        let r = sparse.residency();
        assert_eq!(r.materialized, 12);
        assert_eq!(r.peak, 12);
        assert_eq!(r.bytes, dense.residency().bytes);
    }

    #[test]
    fn evicted_cells_reconstruct_bit_identically() {
        let streams = StreamFactory::new(47);
        let (schedules, neighbors) = staggered_world(10);
        let dense = LazyProbeSet::new(
            1.0,
            120.0,
            schedules.clone(),
            neighbors.clone(),
            Some(3),
            streams.clone(),
        );
        let sparse = LazyProbeSet::new_sparse(
            1.0,
            120.0,
            Arc::new(schedules),
            Arc::new(neighbors),
            Some(3),
            streams,
        );
        // Touch everyone early, idle past the window, evict, then re-touch:
        // the reconstructed state must equal the never-evicted dense cell.
        for i in 0..10 {
            let _ = sparse.availability(NodeId(i), NodeId((i + 1) % 10), 10.0);
        }
        assert_eq!(sparse.residency().materialized, 10);
        let evicted = sparse.evict_idle(60.0, 8);
        assert_eq!(evicted, 10, "all cells idle past the window");
        let r = sparse.residency();
        assert_eq!(r.materialized, 0);
        assert_eq!(r.bytes, 0);
        assert_eq!(r.evictions, 10);
        assert_eq!(r.peak, 10, "peak survives eviction");
        for i in 0..10 {
            assert_eq!(
                dense.estimator(NodeId(i), 97.0),
                sparse.estimator(NodeId(i), 97.0),
                "re-touched node {i}"
            );
        }
        assert_eq!(sparse.residency().materialized, 10);
        assert!(sparse.residency().peak_bytes >= sparse.residency().bytes);
    }

    #[test]
    fn evict_is_noop_on_dense_store() {
        let streams = StreamFactory::new(3);
        let (schedules, neighbors) = staggered_world(4);
        let dense = LazyProbeSet::new(1.0, 50.0, schedules, neighbors, None, streams);
        assert_eq!(dense.evict_idle(50.0, 0), 0);
        assert_eq!(dense.residency().materialized, 4);
        assert_eq!(dense.residency().evictions, 0);
    }

    #[test]
    fn sparse_sync_all_only_syncs_residents() {
        let streams = StreamFactory::new(7);
        let (schedules, neighbors) = staggered_world(8);
        let mut sparse = LazyProbeSet::new_sparse(
            1.0,
            100.0,
            Arc::new(schedules.clone()),
            Arc::new(neighbors.clone()),
            None,
            streams.clone(),
        );
        let _ = sparse.availability(NodeId(2), NodeId(3), 20.0);
        sparse.sync_all(80.0, 2);
        assert_eq!(
            sparse.residency().materialized,
            1,
            "sync_all must not materialize"
        );
        let dense = LazyProbeSet::new(1.0, 100.0, schedules, neighbors, None, streams);
        assert_eq!(
            dense.estimator(NodeId(2), 80.0),
            sparse.estimator(NodeId(2), 80.0)
        );
    }

    #[test]
    fn next_due_respects_replacement_threshold() {
        let streams = StreamFactory::new(40);
        // Owner always up; the only neighbor is never up, so it falls due
        // exactly at the threshold-th tick.
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 1000.0)]),
            NodeSchedule::from_sessions(vec![(990.0, 1000.0)]),
            NodeSchedule::from_sessions(vec![(0.0, 1000.0)]),
        ];
        let lazy = LazyProbeSet::new(
            10.0,
            1000.0,
            schedules,
            vec![vec![NodeId(1)], vec![NodeId(0)], vec![NodeId(0)]],
            Some(3),
            streams,
        );
        // Threshold 3 with ticks at 10, 20, 30, ...: rounds-since-alive for
        // the never-seen slot reaches 3 at tick 3 (t = 30).
        assert_eq!(lazy.next_due_after(NodeId(0), 0.0), Some(30.0));
    }
}
