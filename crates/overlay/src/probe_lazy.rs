//! Event-driven lazy availability estimation.
//!
//! The eager [`ProbeEstimator`](crate::ProbeEstimator) is advanced by a
//! global sweep at every probe tick — O(N·d) work per tick whether or not
//! anyone reads the estimates. But the churn schedule is known analytically
//! (`NodeSchedule` holds each node's `[up, down)` intervals), so the state
//! an estimator would have reached at time `t` is computable in closed
//! form: the number of probe ticks `k·T ≤ t` falling inside an intersection
//! of the owner's and a neighbor's sessions gives the live-round count, and
//! the `rand(0, T)` first-sighting draw is reproducible because it is keyed
//! by (owner, slot, round) rather than consumed from a shared stream.
//!
//! [`LazyProbeSet`] therefore keeps one **cell** per node — the estimator
//! plus the last tick it was synced to — and only touches a cell when it is
//! *read* (a transmission queries availability or live neighbors) or when a
//! neighbor-replacement decision falls due. Catch-up is O(sessions) per
//! neighbor slot, amortized O(churn + queries) overall, instead of
//! O(N·d·horizon/T). Cells are independent, so bulk catch-up for disjoint
//! node sets runs deterministically through
//! [`idpa_desim::pool::parallel_map`].
//!
//! # Equivalence to the eager estimator
//!
//! For the same master seed the lazy cell is **bit-identical** to an eager
//! estimator driven with `probe_round_seeded`/`maintain_seeded` at every
//! tick `k·T < horizon`, because every quantity is derived the same way on
//! both paths:
//!
//! * tick times are `k as f64 * period` (a product, not a running sum), so
//!   both paths evaluate liveness at exactly the same f64 instants;
//! * session time is stored in closed form (`init + live_rounds · T`), so
//!   no f64 summation-order differences can arise;
//! * the first-sighting draw for (owner, slot, round) and the replacement
//!   candidate stream for (owner, round) are position-keyed, so skipping
//!   the rounds in between cannot shift them;
//! * replacement decisions are replayed at exactly the ticks where a slot
//!   crosses the silence threshold (computed in closed form from the
//!   schedule intersections), in slot order, via the *same*
//!   `maintain_seeded` code path.

use std::cell::RefCell;

use idpa_desim::pool::parallel_map;
use idpa_desim::rng::StreamFactory;
use idpa_netmodel::NodeSchedule;

use crate::node::NodeId;
use crate::probe::ProbeEstimator;

/// The probe tick index `k` as a simulation time, computed as a product so
/// that eager scheduling and lazy reconstruction agree to the last bit.
#[inline]
#[must_use]
pub fn tick_time(k: u64, period: f64) -> f64 {
    k as f64 * period
}

/// Smallest `k ≥ 0` with `k·period ≥ t`.
fn first_tick_at_or_after(t: f64, period: f64) -> u64 {
    if t <= 0.0 {
        return 0;
    }
    let mut k = (t / period) as u64;
    while tick_time(k, period) < t {
        k += 1;
    }
    while k > 0 && tick_time(k - 1, period) >= t {
        k -= 1;
    }
    k
}

/// Largest `k ≥ 0` with `k·period < t` (`None` if `t ≤ 0`).
fn last_tick_before(t: f64, period: f64) -> Option<u64> {
    if t <= 0.0 {
        return None;
    }
    let mut k = (t / period).ceil() as u64 + 1;
    while k > 0 && tick_time(k, period) >= t {
        k -= 1;
    }
    while tick_time(k + 1, period) < t {
        k += 1;
    }
    (tick_time(k, period) < t).then_some(k)
}

/// Largest `k ≥ 0` with `k·period ≤ t` (0 if `t < 0`).
fn last_tick_at_or_before(t: f64, period: f64) -> u64 {
    if t < 0.0 {
        return 0;
    }
    let mut k = (t / period).ceil() as u64 + 1;
    while k > 0 && tick_time(k, period) > t {
        k -= 1;
    }
    while tick_time(k + 1, period) <= t {
        k += 1;
    }
    k
}

/// Ticks `k` with `start ≤ k·period < end` — i.e. the ticks at which a node
/// with session `[start, end)` is up, matching `NodeSchedule::is_up`
/// exactly — intersected with `(after, upto]`. Inclusive range, or `None`
/// if empty.
fn session_tick_range(
    start: f64,
    end: f64,
    period: f64,
    after: u64,
    upto: u64,
) -> Option<(u64, u64)> {
    let lo = first_tick_at_or_after(start, period).max(after + 1);
    let hi = last_tick_before(end, period)?.min(upto);
    (lo <= hi).then_some((lo, hi))
}

/// Index of the first session that can still contain a tick `> after`.
/// Sessions are sorted and disjoint, so ends are increasing; a session
/// ending at or before `after·T` cannot contain any tick `k·T` with
/// `k > after` (its ticks satisfy `k·T < e ≤ after·T`).
fn first_live_session(sessions: &[(f64, f64)], period: f64, after: u64) -> usize {
    let frontier = tick_time(after, period);
    sessions.partition_point(|&(_, e)| e <= frontier)
}

/// Number of ticks in `(after, upto]` at which `sessions` is up.
fn count_up_ticks(sessions: &[(f64, f64)], period: f64, after: u64, upto: u64) -> u64 {
    let upto_time = tick_time(upto, period);
    let mut n = 0;
    for &(s, e) in &sessions[first_live_session(sessions, period, after)..] {
        if s > upto_time {
            // Starts are sorted: no later session can contain a tick ≤ upto.
            break;
        }
        if let Some((lo, hi)) = session_tick_range(s, e, period, after, upto) {
            n += hi - lo + 1;
        }
    }
    n
}

/// The `p`-th (1-indexed) up tick of `sessions` in `(after, upto]`.
fn up_tick_at_position(
    sessions: &[(f64, f64)],
    period: f64,
    after: u64,
    upto: u64,
    p: u64,
) -> Option<u64> {
    debug_assert!(p >= 1);
    let upto_time = tick_time(upto, period);
    let mut remaining = p;
    for &(s, e) in &sessions[first_live_session(sessions, period, after)..] {
        if s > upto_time {
            break;
        }
        if let Some((lo, hi)) = session_tick_range(s, e, period, after, upto) {
            let c = hi - lo + 1;
            if remaining <= c {
                return Some(lo + remaining - 1);
            }
            remaining -= c;
        }
    }
    None
}

/// Visits every maximal run of ticks in `(after, upto]` at which *both*
/// schedules are up, as inclusive tick ranges in increasing order.
fn for_each_joint_range(
    own: &[(f64, f64)],
    nbr: &[(f64, f64)],
    period: f64,
    after: u64,
    upto: u64,
    mut f: impl FnMut(u64, u64),
) {
    let upto_time = tick_time(upto, period);
    let mut i = first_live_session(own, period, after);
    let mut j = first_live_session(nbr, period, after);
    while i < own.len() && j < nbr.len() {
        let (s1, e1) = own[i];
        let (s2, e2) = nbr[j];
        let lo_t = s1.max(s2);
        let hi_t = e1.min(e2);
        if lo_t > upto_time {
            // Starts are sorted, so max(s1, s2) only grows from here: no
            // later pair can intersect at a tick ≤ upto.
            break;
        }
        if lo_t < hi_t {
            if let Some((lo, hi)) = session_tick_range(lo_t, hi_t, period, after, upto) {
                f(lo, hi);
            }
        }
        if e1 <= e2 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Shared, immutable context of a [`LazyProbeSet`]: the analytic churn
/// schedules, tick geometry and the position-keyed randomness source.
#[derive(Debug, Clone)]
struct LazyCtx {
    period: f64,
    /// Probe ticks are `1..=max_tick` (all `k` with `0 < k·T < horizon`).
    max_tick: u64,
    n_nodes: usize,
    threshold: Option<u64>,
    streams: StreamFactory,
    schedules: Vec<NodeSchedule>,
}

/// Sentinel in a cell's due cache: the slot's due tick must be recomputed.
const DUE_UNKNOWN: u64 = u64::MAX;
/// Sentinel in a cell's due cache: the slot never falls due again before
/// the horizon.
const DUE_NEVER: u64 = u64::MAX - 1;

/// One node's shard of probe state: the estimator plus its sync frontier.
#[derive(Debug, Clone, PartialEq)]
struct ProbeCell {
    est: ProbeEstimator,
    /// All ticks `≤ synced_tick` have been applied to `est`.
    synced_tick: u64,
    /// Per-slot cache of the next replacement-due tick, computed against
    /// the full horizon ([`DUE_UNKNOWN`] = recompute, [`DUE_NEVER`] = no
    /// further due tick). A slot's absolute due tick is a pure function of
    /// the schedules and the slot's state trajectory, and [`advance`] only
    /// moves the frontier *along* that trajectory — so cached values
    /// survive plain advances and are dropped only after `maintain_seeded`
    /// may have replaced slots.
    due_cache: Vec<u64>,
}

impl Default for ProbeCell {
    fn default() -> Self {
        ProbeCell {
            est: ProbeEstimator::new(NodeId(0), 1.0, Vec::new()),
            synced_tick: 0,
            due_cache: Vec::new(),
        }
    }
}

/// Below this many ticks, catching up by replaying the probe rounds
/// directly is cheaper than the closed-form interval arithmetic (whose
/// per-slot session-range scans have a fixed cost worth paying only for
/// long idle gaps).
const REPLAY_WINDOW: u64 = 8;

/// Applies all probe rounds in ticks `(synced_tick, to]` to the cell in
/// closed form. Must not cross a replacement-due tick (callers segment at
/// those via [`next_due_tick`]).
fn advance(cell: &mut ProbeCell, ctx: &LazyCtx, to: u64) {
    let after = cell.synced_tick;
    if to <= after {
        return;
    }
    if to - after <= REPLAY_WINDOW {
        // Short catch-up: run the probe rounds tick by tick — the eager
        // code path itself, so equivalence is by construction.
        for k in (after + 1)..=to {
            let t = idpa_desim::SimTime::new(tick_time(k, ctx.period));
            if ctx.schedules[cell.est.owner.index()].is_up(t) {
                let sch = &ctx.schedules;
                cell.est
                    .probe_round_seeded(&ctx.streams, |v| sch[v.index()].is_up(t));
            }
        }
        cell.synced_tick = to;
        return;
    }
    let own = ctx.schedules[cell.est.owner.index()].sessions();
    let new_rounds = count_up_ticks(own, ctx.period, after, to);
    if new_rounds > 0 {
        for i in 0..cell.est.neighbors.len() {
            let nbr = ctx.schedules[cell.est.neighbors[i].index()].sessions();
            let mut live = 0u64;
            let mut first = None;
            let mut last = 0u64;
            for_each_joint_range(own, nbr, ctx.period, after, to, |lo, hi| {
                live += hi - lo + 1;
                if first.is_none() {
                    first = Some(lo);
                }
                last = hi;
            });
            if live == 0 {
                continue;
            }
            // Owner round numbers at the first/last joint tick.
            let r_last = cell.est.rounds + count_up_ticks(own, ctx.period, after, last);
            cell.est.last_alive_round[i] = r_last;
            if cell.est.ever_seen[i] {
                cell.est.live_rounds[i] += live;
            } else {
                let first = first.expect("live > 0 implies a first joint tick");
                let r_first = cell.est.rounds + count_up_ticks(own, ctx.period, after, first);
                cell.est.ever_seen[i] = true;
                cell.est.init_time[i] = crate::probe::init_session_draw(
                    &ctx.streams,
                    cell.est.owner,
                    i,
                    r_first,
                    ctx.period,
                );
                cell.est.live_rounds[i] = live - 1;
            }
        }
        cell.est.rounds += new_rounds;
    }
    cell.synced_tick = to;
}

/// First tick in `(synced_tick, upper]` at which slot `i` will be
/// replacement-due: the owner is up, and after probing, the slot's silence
/// `rounds − last_alive_round` reaches `thr`. `None` if no such tick.
fn slot_due(
    est: &ProbeEstimator,
    synced_tick: u64,
    ctx: &LazyCtx,
    i: usize,
    thr: u64,
    upper: u64,
) -> Option<u64> {
    debug_assert!(thr >= 1, "lazy maintenance needs threshold >= 1");
    let after = synced_tick;
    let own = ctx.schedules[est.owner.index()].sessions();
    let nbr = ctx.schedules[est.neighbors[i].index()].sessions();
    let gap0 = est.rounds - est.last_alive_round[i];
    // The slot falls due at the `due_pos`-th owner-up tick after the sync
    // frontier, unless a joint-live tick resets the silence gap first. A
    // tick that is itself joint-live is never due (the probe runs before
    // maintenance and clears the gap). The two-pointer walk below visits
    // the joint-live ranges in increasing order (the same order
    // [`for_each_joint_range`] produces) and stops at the first range
    // starting after the candidate due position, so a near due tick never
    // pays for the schedule's full tail.
    let mut due_pos = if gap0 >= thr { 1 } else { thr - gap0 };
    let upper_time = tick_time(upper, ctx.period);
    let mut oi = first_live_session(own, ctx.period, after);
    let mut ni = first_live_session(nbr, ctx.period, after);
    while oi < own.len() && ni < nbr.len() {
        let (s1, e1) = own[oi];
        let (s2, e2) = nbr[ni];
        let lo_t = s1.max(s2);
        let hi_t = e1.min(e2);
        if lo_t > upper_time {
            break;
        }
        if lo_t < hi_t {
            if let Some((lo, hi)) = session_tick_range(lo_t, hi_t, ctx.period, after, upper) {
                // Ticks lo..=hi are consecutive owner-up ticks (they lie
                // inside one owner session), all joint-live.
                let p_start = count_up_ticks(own, ctx.period, after, lo);
                let p_end = p_start + (hi - lo);
                if due_pos < p_start {
                    return up_tick_at_position(own, ctx.period, after, upper, due_pos);
                }
                due_pos = p_end + thr;
            }
        }
        if e1 <= e2 {
            oi += 1;
        } else {
            ni += 1;
        }
    }
    up_tick_at_position(own, ctx.period, after, upper, due_pos)
}

/// Earliest replacement-due tick over all slots strictly after the sync
/// frontier, up to the horizon. Served from the cell's per-slot due cache;
/// only slots invalidated since the last maintenance are recomputed, so
/// the repeated calls in [`sync_cell_slow`]'s advance/maintain loop (and
/// from [`LazyProbeSet::next_due_after`]-driven event scheduling) cost a
/// cheap `min` over ≤ degree cached values instead of a full closed-form
/// scan per call.
fn next_due_tick(cell: &mut ProbeCell, ctx: &LazyCtx, thr: u64) -> Option<u64> {
    let ProbeCell {
        est,
        synced_tick,
        due_cache,
    } = cell;
    due_cache.resize(est.neighbors.len(), DUE_UNKNOWN);
    let mut min = DUE_NEVER;
    for (i, slot) in due_cache.iter_mut().enumerate() {
        if *slot == DUE_UNKNOWN {
            *slot = slot_due(est, *synced_tick, ctx, i, thr, ctx.max_tick)
                .map_or(DUE_NEVER, |k| k.min(DUE_NEVER - 1));
        }
        min = min.min(*slot);
    }
    (min < DUE_NEVER).then_some(min)
}

/// Syncs the cell through tick `target`, replaying maintenance at exactly
/// the due ticks in between. The common case — the cell is already at the
/// target, because reads cluster at one simulation time — stays inline;
/// actual catch-up is the out-of-line slow path.
#[inline]
fn sync_cell(cell: &mut ProbeCell, ctx: &LazyCtx, target: u64) {
    if cell.synced_tick < target {
        sync_cell_slow(cell, ctx, target);
    }
}

fn sync_cell_slow(cell: &mut ProbeCell, ctx: &LazyCtx, target: u64) {
    let Some(thr) = ctx.threshold else {
        advance(cell, ctx, target);
        return;
    };
    while cell.synced_tick < target {
        match next_due_tick(cell, ctx, thr) {
            Some(k) if k <= target => {
                advance(cell, ctx, k);
                cell.est.maintain_seeded(&ctx.streams, thr, ctx.n_nodes);
                // Maintenance may have replaced slots; their trajectories
                // (and hence due ticks) are new.
                cell.due_cache.fill(DUE_UNKNOWN);
            }
            // Next due tick beyond the target (or never): plain advance,
            // cached dues stay valid for the next sync or query.
            _ => advance(cell, ctx, target),
        }
    }
}

/// Sharded, lazily-synced probe state for every node in the system.
///
/// Reads (`availability`, `with_neighbors`, …) sync the queried node's cell
/// on demand through interior mutability; [`LazyProbeSet::sync_all`] bulk-
/// syncs disjoint cells in parallel, bit-identically at any thread count.
#[derive(Debug, Clone)]
pub struct LazyProbeSet {
    ctx: LazyCtx,
    cells: Vec<RefCell<ProbeCell>>,
    /// Memo of the last `now → target tick` mapping: reads cluster at a
    /// single simulation time (all queries of one transmission), so the
    /// tick arithmetic is paid once per distinct `now`.
    tick_memo: std::cell::Cell<(f64, u64)>,
}

impl LazyProbeSet {
    /// Builds the lazy probe state over analytic churn `schedules` and the
    /// initial `neighbors` sets. Probe ticks are every `k·period < horizon`
    /// (`k ≥ 1`); `threshold` enables neighbor replacement after that many
    /// silent rounds (must be ≥ 1 — a threshold of 0 would replace a
    /// neighbor at the very tick it is observed alive).
    #[must_use]
    pub fn new(
        period: f64,
        horizon: f64,
        schedules: Vec<NodeSchedule>,
        neighbors: Vec<Vec<NodeId>>,
        threshold: Option<u64>,
        streams: StreamFactory,
    ) -> Self {
        assert!(period > 0.0, "probing period must be positive");
        assert_eq!(
            schedules.len(),
            neighbors.len(),
            "one neighbor set per node"
        );
        if let Some(t) = threshold {
            assert!(t >= 1, "replacement threshold must be >= 1");
        }
        let max_tick = last_tick_before(horizon, period).unwrap_or(0);
        let cells = neighbors
            .into_iter()
            .enumerate()
            .map(|(i, nbrs)| {
                RefCell::new(ProbeCell {
                    est: ProbeEstimator::new(NodeId(i), period, nbrs),
                    synced_tick: 0,
                    due_cache: Vec::new(),
                })
            })
            .collect();
        LazyProbeSet {
            ctx: LazyCtx {
                period,
                max_tick,
                n_nodes: schedules.len(),
                threshold,
                streams,
                schedules,
            },
            cells,
            tick_memo: std::cell::Cell::new((f64::NEG_INFINITY, 0)),
        }
    }

    /// The probing period `T`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.ctx.period
    }

    /// The last probe tick before the horizon.
    #[must_use]
    pub fn max_tick(&self) -> u64 {
        self.ctx.max_tick
    }

    /// The tick the state at time `now` reflects: all ticks `k·T ≤ now`
    /// (clamped to the horizon).
    fn target_tick(&self, now: f64) -> u64 {
        let (memo_now, memo_tick) = self.tick_memo.get();
        if memo_now == now {
            return memo_tick;
        }
        let tick = last_tick_at_or_before(now, self.ctx.period).min(self.ctx.max_tick);
        self.tick_memo.set((now, tick));
        tick
    }

    /// Syncs node `s`'s cell through `now` and hands it to `f`.
    fn with_cell<R>(&self, s: NodeId, now: f64, f: impl FnOnce(&ProbeCell) -> R) -> R {
        let target = self.target_tick(now);
        let mut cell = self.cells[s.index()].borrow_mut();
        sync_cell(&mut cell, &self.ctx, target);
        f(&cell)
    }

    /// Syncs node `s` through every tick at or before `now`.
    pub fn sync_node(&self, s: NodeId, now: f64) {
        self.with_cell(s, now, |_| ());
    }

    /// `α_s(v)` as of time `now` (syncs `s` on demand).
    #[must_use]
    pub fn availability(&self, s: NodeId, v: NodeId, now: f64) -> f64 {
        self.with_cell(s, now, |cell| cell.est.availability(v))
    }

    /// `t_s(v)` as of time `now` (syncs `s` on demand).
    #[must_use]
    pub fn session_time(&self, s: NodeId, v: NodeId, now: f64) -> f64 {
        self.with_cell(s, now, |cell| cell.est.session_time(v))
    }

    /// Calls `f` with `s`'s current neighbor set as of `now` (syncs `s` on
    /// demand — replacements up to `now` are visible).
    pub fn with_neighbors<R>(&self, s: NodeId, now: f64, f: impl FnOnce(&[NodeId]) -> R) -> R {
        self.with_cell(s, now, |cell| f(cell.est.neighbors()))
    }

    /// A snapshot of `s`'s estimator as of `now` — the exact state an eager
    /// [`ProbeEstimator`] driven with `probe_round_seeded`/`maintain_seeded`
    /// at every tick would hold.
    #[must_use]
    pub fn estimator(&self, s: NodeId, now: f64) -> ProbeEstimator {
        self.with_cell(s, now, |cell| cell.est.clone())
    }

    /// The time of the next tick strictly after `now` at which some slot of
    /// `s` falls replacement-due (`None` without a threshold, or if no slot
    /// ever falls due again before the horizon). Syncs `s` to `now` first,
    /// so the answer reflects all replacements up to `now`.
    #[must_use]
    pub fn next_due_after(&self, s: NodeId, now: f64) -> Option<f64> {
        let thr = self.ctx.threshold?;
        self.sync_node(s, now);
        let mut cell = self.cells[s.index()].borrow_mut();
        next_due_tick(&mut cell, &self.ctx, thr).map(|k| tick_time(k, self.ctx.period))
    }

    /// Syncs every cell through `now` on `threads` workers. Cells are
    /// disjoint, so the result is bit-identical at any thread count.
    pub fn sync_all(&mut self, now: f64, threads: usize) {
        let target = self.target_tick(now);
        let cells: Vec<ProbeCell> = self
            .cells
            .iter_mut()
            .map(|c| std::mem::take(c.get_mut()))
            .collect();
        let ctx = &self.ctx;
        let synced = parallel_map(threads, cells.len(), |i| {
            let mut cell = cells[i].clone();
            sync_cell(&mut cell, ctx, target);
            cell
        });
        for (slot, cell) in self.cells.iter_mut().zip(synced) {
            *slot.get_mut() = cell;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_helpers_agree_with_is_up_semantics() {
        use idpa_desim::SimTime;
        let sched = NodeSchedule::from_sessions(vec![(2.5, 10.0), (12.0, 13.0)]);
        let period = 2.5;
        for k in 1..8u64 {
            let t = tick_time(k, period);
            let counted = count_up_ticks(sched.sessions(), period, k - 1, k) == 1;
            assert_eq!(sched.is_up(SimTime::new(t)), counted, "tick {k} at t={t}");
        }
    }

    #[test]
    fn boundary_ticks_land_like_is_up() {
        // A session starting exactly on a tick includes it; one ending
        // exactly on a tick excludes it ([start, end) semantics).
        let period = 5.0;
        let sessions = [(5.0, 20.0)];
        assert_eq!(session_tick_range(5.0, 20.0, period, 0, 100), Some((1, 3)));
        assert_eq!(count_up_ticks(&sessions, period, 0, 100), 3);
    }

    #[test]
    fn last_tick_before_handles_exact_multiples() {
        assert_eq!(last_tick_before(10.0, 5.0), Some(1));
        assert_eq!(last_tick_before(10.1, 5.0), Some(2));
        assert_eq!(last_tick_before(0.0, 5.0), None);
        assert_eq!(last_tick_at_or_before(10.0, 5.0), 2);
        assert_eq!(last_tick_at_or_before(9.9, 5.0), 1);
    }

    #[test]
    fn lazy_matches_eager_simple_two_node_case() {
        let streams = StreamFactory::new(17);
        let period = 5.0;
        let horizon = 100.0;
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 100.0)]),
            NodeSchedule::from_sessions(vec![(12.0, 40.0), (60.0, 80.0)]),
        ];
        let neighbors = vec![vec![NodeId(1)], vec![NodeId(0)]];

        // Eager reference.
        let mut eager: Vec<ProbeEstimator> = (0..2)
            .map(|i| ProbeEstimator::new(NodeId(i), period, neighbors[i].clone()))
            .collect();
        let mut k = 1u64;
        while tick_time(k, period) < horizon {
            let t = idpa_desim::SimTime::new(tick_time(k, period));
            for i in 0..2 {
                if schedules[i].is_up(t) {
                    let sch = &schedules;
                    eager[i].probe_round_seeded(&streams, |v| sch[v.index()].is_up(t));
                }
            }
            k += 1;
        }

        let lazy = LazyProbeSet::new(period, horizon, schedules, neighbors, None, streams);
        for i in 0..2 {
            assert_eq!(lazy.estimator(NodeId(i), horizon), eager[i], "node {i}");
        }
    }

    #[test]
    fn queries_at_intermediate_times_see_partial_state() {
        let streams = StreamFactory::new(5);
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 50.0)]),
            NodeSchedule::from_sessions(vec![(0.0, 50.0)]),
        ];
        let lazy = LazyProbeSet::new(
            5.0,
            50.0,
            schedules,
            vec![vec![NodeId(1)], vec![NodeId(0)]],
            None,
            streams,
        );
        assert_eq!(lazy.session_time(NodeId(0), NodeId(1), 0.0), 0.0);
        let early = lazy.session_time(NodeId(0), NodeId(1), 12.0);
        let late = lazy.session_time(NodeId(0), NodeId(1), 40.0);
        assert!(early > 0.0);
        assert!(late > early, "early={early} late={late}");
    }

    #[test]
    fn sync_all_is_thread_count_invariant() {
        let streams = StreamFactory::new(23);
        let n = 12;
        let schedules: Vec<NodeSchedule> = (0..n)
            .map(|i| {
                let s = f64::from(i) * 1.7;
                NodeSchedule::from_sessions(vec![(s, s + 37.0), (s + 50.0, s + 90.0)])
            })
            .collect();
        let neighbors: Vec<Vec<NodeId>> = (0..n as usize)
            .map(|i| vec![NodeId((i + 1) % n as usize), NodeId((i + 3) % n as usize)])
            .collect();
        let build = || {
            LazyProbeSet::new(
                1.0,
                120.0,
                schedules.clone(),
                neighbors.clone(),
                Some(4),
                streams.clone(),
            )
        };
        let mut one = build();
        one.sync_all(120.0, 1);
        for threads in [2, 8] {
            let mut multi = build();
            multi.sync_all(120.0, threads);
            for i in 0..n as usize {
                assert_eq!(
                    one.estimator(NodeId(i), 120.0),
                    multi.estimator(NodeId(i), 120.0),
                    "node {i} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn next_due_respects_replacement_threshold() {
        let streams = StreamFactory::new(40);
        // Owner always up; the only neighbor is never up, so it falls due
        // exactly at the threshold-th tick.
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 1000.0)]),
            NodeSchedule::from_sessions(vec![(990.0, 1000.0)]),
            NodeSchedule::from_sessions(vec![(0.0, 1000.0)]),
        ];
        let lazy = LazyProbeSet::new(
            10.0,
            1000.0,
            schedules,
            vec![vec![NodeId(1)], vec![NodeId(0)], vec![NodeId(0)]],
            Some(3),
            streams,
        );
        // Threshold 3 with ticks at 10, 20, 30, ...: rounds-since-alive for
        // the never-seen slot reaches 3 at tick 3 (t = 30).
        assert_eq!(lazy.next_due_after(NodeId(0), 0.0), Some(30.0));
    }
}
