//! Crash-aware probe invalidation — adaptive distrust of stale estimates.
//!
//! The §2.3 availability estimate `α_s(v)` is a long-run session-time
//! share derived purely from the analytic churn schedule; the probe layer
//! never observes injected faults. So when a transmission through relay
//! `v` fails in a *confirmed* way (a crash truncates `v`'s session, or a
//! payload is lost on an edge into `v`), the estimate the initiator keeps
//! routing on is known-stale — under the static response it stays in force
//! until the session-end recovery naturally washes it out.
//!
//! [`ProbeInvalidation`] is the adaptive fix: a per-node "distrust until"
//! horizon that masks the probe-derived estimate to zero availability the
//! moment the failure is confirmed, holding until fresh probe evidence
//! could have re-established the relay (one probing period past the point
//! the relay is actually reachable again).
//!
//! It is deliberately an *overlay applied on top of* both probe
//! implementations rather than a mutation of [`crate::LazyProbeSet`]
//! cells: eager and lazy probe state are pinned bit-identical by the
//! cross-mode equivalence suite, and masking the read path — identically
//! for both modes — preserves that equality by construction, where
//! rewriting lazily materialized cells would have to be replayed into
//! every eager estimator too.

/// Per-node probe-estimate invalidation horizons.
///
/// All horizons are deterministic functions of confirmed simulation events,
/// so adaptive runs replay bit-identically from the master seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeInvalidation {
    /// `until[v]`: probe estimates for `v` are masked to zero availability
    /// while `now < until[v]`.
    until: Vec<f64>,
}

impl ProbeInvalidation {
    /// No distrust: every node's probe estimate is taken at face value.
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        ProbeInvalidation {
            until: vec![0.0; n_nodes],
        }
    }

    /// Invalidates `v`'s probe estimate until the given time (minutes).
    /// Horizons only ever extend — a shorter new horizon never un-masks an
    /// earlier, longer distrust window.
    pub fn invalidate(&mut self, v: usize, until: f64) {
        if until > self.until[v] {
            self.until[v] = until;
        }
    }

    /// Clears `v`'s distrust window entirely. The one exception to
    /// "horizons only extend": a whitewash rejoin — the distrust was
    /// earned by the identity the node just shed, so the fresh identity
    /// starts untracked, exactly like a genuinely new node.
    pub fn forgive(&mut self, v: usize) {
        self.until[v] = 0.0;
    }

    /// Whether `v`'s probe estimate is currently masked.
    #[must_use]
    pub fn masked(&self, v: usize, now: f64) -> bool {
        now < self.until[v]
    }

    /// The current distrust horizon for `v` (0 when never invalidated).
    #[must_use]
    pub fn horizon(&self, v: usize) -> f64 {
        self.until[v]
    }

    /// Number of nodes with any distrust window ever recorded.
    #[must_use]
    pub fn invalidated_nodes(&self) -> usize {
        self.until.iter().filter(|&&t| t > 0.0).count()
    }

    /// Snapshot export: the per-node distrust horizons.
    #[must_use]
    pub fn snapshot_state(&self) -> Vec<f64> {
        self.until.clone()
    }

    /// Rebuilds the overlay from a [`ProbeInvalidation::snapshot_state`]
    /// export. Callers must have validated the vector (finite,
    /// non-negative, one entry per node) — the snapshot decoder does.
    #[must_use]
    pub fn from_snapshot(until: Vec<f64>) -> Self {
        ProbeInvalidation { until }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_overlay_masks_nothing() {
        let inv = ProbeInvalidation::new(3);
        assert!(!inv.masked(0, 0.0));
        assert!(!inv.masked(2, 1e9));
        assert_eq!(inv.invalidated_nodes(), 0);
    }

    #[test]
    fn masking_holds_until_the_horizon_then_clears() {
        let mut inv = ProbeInvalidation::new(2);
        inv.invalidate(1, 30.0);
        assert!(inv.masked(1, 0.0));
        assert!(inv.masked(1, 29.999));
        assert!(!inv.masked(1, 30.0), "horizon itself is trusted again");
        assert!(!inv.masked(0, 0.0), "other nodes unaffected");
        assert_eq!(inv.invalidated_nodes(), 1);
    }

    #[test]
    fn horizons_only_extend() {
        let mut inv = ProbeInvalidation::new(1);
        inv.invalidate(0, 50.0);
        inv.invalidate(0, 10.0);
        assert!((inv.horizon(0) - 50.0).abs() < f64::EPSILON);
        inv.invalidate(0, 80.0);
        assert!((inv.horizon(0) - 80.0).abs() < f64::EPSILON);
    }

    #[test]
    fn forgive_clears_the_window_and_later_distrust_restarts() {
        let mut inv = ProbeInvalidation::new(2);
        inv.invalidate(0, 50.0);
        inv.forgive(0);
        assert!(!inv.masked(0, 0.0));
        assert_eq!(inv.horizon(0), 0.0);
        assert_eq!(inv.invalidated_nodes(), 0);
        // The fresh identity can earn distrust again from scratch.
        inv.invalidate(0, 10.0);
        assert!((inv.horizon(0) - 10.0).abs() < f64::EPSILON);
    }
}
