//! Active-probing availability estimation (§2.3 of the paper).
//!
//! > "When a peer first joins the system, it initializes the session time of
//! > each of its neighbors to 0. At the start of each probing period a peer
//! > s checks the liveness of each neighbor. If the neighbor is alive, its
//! > session time t_s is updated as t_s^new = t_s^old + T, where T is the
//! > probing time period. If a new neighbor is found, its session time is
//! > updated as t_s^new = rand(0, T) ... Finally availability of a neighbor
//! > u ∈ D(s) is calculated as α(u) = t_s(u) / Σ_{v∈D(s)} t_s(v)."
//!
//! Note the estimator is *relative*: α sums to 1 over the neighbor set (when
//! any session time is non-zero), so it ranks neighbors by observed uptime
//! rather than measuring absolute uptime fraction.

use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use rand::RngExt;

use crate::node::NodeId;

/// Stream label for the `rand(0, T)` first-sighting initialisation draw.
pub(crate) const PROBE_INIT_LABEL: &str = "probe-init";
/// Stream label for neighbor-replacement candidate draws.
pub(crate) const PROBE_MAINT_LABEL: &str = "probe-maint";

/// The `rand(0, T)` first-sighting draw, keyed by *position* — (owner,
/// neighbor slot, probe round) — rather than taken from a shared sequential
/// stream. Keying by position is what lets a lazily-materialized estimator
/// reproduce the draw bit-for-bit without replaying every earlier round.
pub(crate) fn init_session_draw(
    streams: &StreamFactory,
    owner: NodeId,
    slot: usize,
    round: u64,
    period: f64,
) -> f64 {
    debug_assert!(slot < (1 << 16), "neighbor slot index exceeds key space");
    let key = (round << 16) | slot as u64;
    let mut rng = streams.stream_indexed2(PROBE_INIT_LABEL, owner.index() as u64, key);
    rng.random_range(0.0..period)
}

/// The candidate stream for one (owner, round) neighbor-maintenance pass.
/// All stale slots of the round draw sequentially from this one stream, in
/// slot order.
pub(crate) fn maintenance_stream(
    streams: &StreamFactory,
    owner: NodeId,
    round: u64,
) -> Xoshiro256StarStar {
    streams.stream_indexed2(PROBE_MAINT_LABEL, owner.index() as u64, round)
}

/// Per-node availability estimator driven by periodic liveness probes.
///
/// Session time is represented in closed form — `init + live_rounds · T`
/// per neighbor — so that an estimator advanced one round at a time and one
/// reconstructed analytically from a churn schedule produce bit-identical
/// floating-point values (no dependence on f64 summation order).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEstimator {
    pub(crate) owner: NodeId,
    pub(crate) period: f64,
    pub(crate) neighbors: Vec<NodeId>,
    /// The `rand(0, T)` first-sighting initialisation per slot (0 until the
    /// neighbor is first seen alive), parallel to `neighbors`.
    pub(crate) init_time: Vec<f64>,
    /// Live probe rounds observed *after* the first sighting, per slot.
    pub(crate) live_rounds: Vec<u64>,
    /// Whether the neighbor was seen alive at least once (drives the
    /// "new neighbor found" initialisation rule).
    pub(crate) ever_seen: Vec<bool>,
    /// Round at which each neighbor was last observed alive (0 if never).
    pub(crate) last_alive_round: Vec<u64>,
    pub(crate) rounds: u64,
}

impl ProbeEstimator {
    /// Creates the estimator for `owner` with probing period `period`
    /// minutes over neighbor set `neighbors`. All session times start at 0,
    /// as the paper specifies for a freshly joined peer.
    #[must_use]
    pub fn new(owner: NodeId, period: f64, neighbors: Vec<NodeId>) -> Self {
        assert!(period > 0.0, "probing period must be positive");
        let n = neighbors.len();
        ProbeEstimator {
            owner,
            period,
            neighbors,
            init_time: vec![0.0; n],
            live_rounds: vec![0; n],
            ever_seen: vec![false; n],
            last_alive_round: vec![0; n],
            rounds: 0,
        }
    }

    /// The probing period `T`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The owning node.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of probe rounds executed.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes one probing round. `is_alive(v)` reports neighbor liveness
    /// at probe time; `rng` supplies the `rand(0, T)` initialisation for a
    /// neighbor seen alive for the first time.
    pub fn probe_round(
        &mut self,
        mut is_alive: impl FnMut(NodeId) -> bool,
        rng: &mut Xoshiro256StarStar,
    ) {
        self.rounds += 1;
        for (i, &v) in self.neighbors.iter().enumerate() {
            if !is_alive(v) {
                continue;
            }
            self.last_alive_round[i] = self.rounds;
            if self.ever_seen[i] {
                self.live_rounds[i] += 1;
            } else {
                // First sighting: the neighbor has been up for an unknown
                // fraction of the period — initialise uniformly in (0, T).
                self.ever_seen[i] = true;
                self.init_time[i] = rng.random_range(0.0..self.period);
            }
        }
    }

    /// [`Self::probe_round`] with the first-sighting draw keyed by
    /// (owner, slot, round) through `streams` instead of consumed from a
    /// shared sequential generator. Estimators advanced this way are
    /// independent across nodes — the order in which nodes probe (or
    /// whether rounds are replayed lazily) cannot shift anyone's draws.
    pub fn probe_round_seeded(
        &mut self,
        streams: &StreamFactory,
        mut is_alive: impl FnMut(NodeId) -> bool,
    ) {
        self.rounds += 1;
        for (i, &v) in self.neighbors.iter().enumerate() {
            if !is_alive(v) {
                continue;
            }
            self.last_alive_round[i] = self.rounds;
            if self.ever_seen[i] {
                self.live_rounds[i] += 1;
            } else {
                self.ever_seen[i] = true;
                self.init_time[i] =
                    init_session_draw(streams, self.owner, i, self.rounds, self.period);
            }
        }
    }

    /// Replaces every neighbor silent for `threshold`+ rounds with a fresh
    /// random peer (not self, not already a neighbor; up to 16 candidate
    /// draws each). Candidates come from the per-(owner, round)
    /// [`maintenance_stream`], so the decision sequence is a pure function
    /// of (master seed, owner, round, current estimator state).
    pub fn maintain_seeded(&mut self, streams: &StreamFactory, threshold: u64, n_nodes: usize) {
        let mut rng: Option<Xoshiro256StarStar> = None;
        for i in 0..self.neighbors.len() {
            if self.rounds - self.last_alive_round[i] < threshold {
                continue;
            }
            let rng =
                rng.get_or_insert_with(|| maintenance_stream(streams, self.owner, self.rounds));
            let mut found = None;
            for _ in 0..16 {
                let c = NodeId(rng.random_range(0..n_nodes));
                if c != self.owner && !self.neighbors.contains(&c) {
                    found = Some(c);
                    break;
                }
            }
            if let Some(new) = found {
                self.neighbors[i] = new;
                self.init_time[i] = 0.0;
                self.live_rounds[i] = 0;
                self.ever_seen[i] = false;
                self.last_alive_round[i] = self.rounds;
            }
        }
    }

    /// Session time of the neighbor in `slot`, in the closed form
    /// `init + live_rounds · T`.
    pub(crate) fn slot_session_time(&self, slot: usize) -> f64 {
        if self.ever_seen[slot] {
            self.init_time[slot] + self.live_rounds[slot] as f64 * self.period
        } else {
            0.0
        }
    }

    /// Observed session time `t_s(v)`; 0 for a neighbor never seen alive or
    /// a node outside `D(s)`.
    #[must_use]
    pub fn session_time(&self, v: NodeId) -> f64 {
        self.neighbors
            .iter()
            .position(|&u| u == v)
            .map_or(0.0, |i| self.slot_session_time(i))
    }

    /// The §2.3 availability estimate `α_s(v) ∈ [0, 1]`.
    ///
    /// Before any neighbor has been observed alive, every availability is 0
    /// (the paper's initialisation); afterwards the estimates over `D(s)`
    /// sum to 1.
    #[must_use]
    pub fn availability(&self, v: NodeId) -> f64 {
        let total: f64 = (0..self.neighbors.len())
            .map(|i| self.slot_session_time(i))
            .sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.session_time(v) / total
    }

    /// All `(neighbor, availability)` pairs.
    #[must_use]
    pub fn availabilities(&self) -> Vec<(NodeId, f64)> {
        self.neighbors
            .iter()
            .map(|&v| (v, self.availability(v)))
            .collect()
    }

    /// Consecutive probe rounds since `v` was last seen alive (`None` for
    /// non-neighbors; `rounds()` for a neighbor never seen). Drives the
    /// neighbor-replacement policy.
    #[must_use]
    pub fn rounds_since_alive(&self, v: NodeId) -> Option<u64> {
        let i = self.neighbors.iter().position(|&u| u == v)?;
        Some(self.rounds - self.last_alive_round[i])
    }

    /// Replaces neighbor `old` with `new`, resetting the paper's "new
    /// neighbor found" state: session time restarts at zero and the next
    /// sighting re-initialises it to `rand(0, T)`. Returns `false` (no
    /// change) if `old` is not a neighbor or `new` already is.
    pub fn replace_neighbor(&mut self, old: NodeId, new: NodeId) -> bool {
        if self.neighbors.contains(&new) {
            return false;
        }
        let Some(i) = self.neighbors.iter().position(|&u| u == old) else {
            return false;
        };
        self.neighbors[i] = new;
        self.init_time[i] = 0.0;
        self.live_rounds[i] = 0;
        self.ever_seen[i] = false;
        self.last_alive_round[i] = self.rounds;
        true
    }

    /// The current neighbor set (it changes under replacement).
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Snapshot export: the estimator's full mutable state.
    #[must_use]
    pub fn snapshot_state(&self) -> ProbeEstimatorState {
        ProbeEstimatorState {
            owner: self.owner,
            period: self.period,
            neighbors: self.neighbors.clone(),
            init_time: self.init_time.clone(),
            live_rounds: self.live_rounds.clone(),
            ever_seen: self.ever_seen.clone(),
            last_alive_round: self.last_alive_round.clone(),
            rounds: self.rounds,
        }
    }

    /// Rebuilds an estimator from a [`ProbeEstimator::snapshot_state`]
    /// export. Callers must have validated the state (positive finite
    /// period, parallel array lengths) — the snapshot decoder does.
    #[must_use]
    pub fn from_snapshot(state: ProbeEstimatorState) -> Self {
        ProbeEstimator {
            owner: state.owner,
            period: state.period,
            neighbors: state.neighbors,
            init_time: state.init_time,
            live_rounds: state.live_rounds,
            ever_seen: state.ever_seen,
            last_alive_round: state.last_alive_round,
            rounds: state.rounds,
        }
    }
}

/// The full mutable state of a [`ProbeEstimator`], as a plain-data value
/// for snapshot/resume. All vectors are parallel, indexed by neighbor slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEstimatorState {
    /// The owning node.
    pub owner: NodeId,
    /// The probing period `T` (minutes).
    pub period: f64,
    /// The current neighbor set.
    pub neighbors: Vec<NodeId>,
    /// Per-slot `rand(0, T)` first-sighting initialisation.
    pub init_time: Vec<f64>,
    /// Per-slot live rounds observed after the first sighting.
    pub live_rounds: Vec<u64>,
    /// Per-slot whether the neighbor was ever seen alive.
    pub ever_seen: Vec<bool>,
    /// Per-slot round of the last live observation.
    pub last_alive_round: Vec<u64>,
    /// Probe rounds executed.
    pub rounds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn estimator() -> ProbeEstimator {
        ProbeEstimator::new(NodeId(0), 5.0, vec![NodeId(1), NodeId(2), NodeId(3)])
    }

    #[test]
    fn initial_availability_is_zero() {
        let est = estimator();
        assert_eq!(est.availability(NodeId(1)), 0.0);
        assert_eq!(est.session_time(NodeId(2)), 0.0);
    }

    #[test]
    fn first_sighting_initialises_in_zero_period() {
        let mut est = estimator();
        let mut r = rng(1);
        est.probe_round(|v| v == NodeId(1), &mut r);
        let t = est.session_time(NodeId(1));
        assert!((0.0..5.0).contains(&t), "t={t}");
        assert_eq!(est.session_time(NodeId(2)), 0.0);
    }

    #[test]
    fn subsequent_sightings_add_full_period() {
        let mut est = estimator();
        let mut r = rng(2);
        est.probe_round(|v| v == NodeId(1), &mut r);
        let t0 = est.session_time(NodeId(1));
        est.probe_round(|v| v == NodeId(1), &mut r);
        est.probe_round(|v| v == NodeId(1), &mut r);
        assert!((est.session_time(NodeId(1)) - (t0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn availability_is_share_of_total() {
        let mut est = estimator();
        let mut r = rng(3);
        // Node 1 alive for 4 rounds, node 2 for 2 rounds, node 3 never.
        for round in 0..4 {
            est.probe_round(|v| v == NodeId(1) || (v == NodeId(2) && round < 2), &mut r);
        }
        let a1 = est.availability(NodeId(1));
        let a2 = est.availability(NodeId(2));
        let a3 = est.availability(NodeId(3));
        assert!(a1 > a2, "a1={a1} a2={a2}");
        assert_eq!(a3, 0.0);
        assert!(
            (a1 + a2 + a3 - 1.0).abs() < 1e-12,
            "availabilities sum to 1"
        );
    }

    #[test]
    fn availability_of_stranger_is_zero() {
        let mut est = estimator();
        let mut r = rng(4);
        est.probe_round(|_| true, &mut r);
        assert_eq!(est.availability(NodeId(99)), 0.0);
    }

    #[test]
    fn down_neighbor_gains_nothing() {
        let mut est = estimator();
        let mut r = rng(5);
        for _ in 0..10 {
            est.probe_round(|v| v != NodeId(3), &mut r);
        }
        assert_eq!(est.session_time(NodeId(3)), 0.0);
        assert_eq!(est.availability(NodeId(3)), 0.0);
    }

    #[test]
    fn rejoin_resumes_accumulation() {
        // A neighbor that goes down and comes back keeps its accumulated
        // session time and continues adding full periods (the estimator has
        // already "found" it).
        let mut est = estimator();
        let mut r = rng(6);
        est.probe_round(|v| v == NodeId(1), &mut r);
        let t0 = est.session_time(NodeId(1));
        est.probe_round(|_| false, &mut r); // down
        est.probe_round(|v| v == NodeId(1), &mut r); // back up
        assert!((est.session_time(NodeId(1)) - (t0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn rounds_counter_increments() {
        let mut est = estimator();
        let mut r = rng(7);
        for _ in 0..3 {
            est.probe_round(|_| false, &mut r);
        }
        assert_eq!(est.rounds(), 3);
    }

    #[test]
    fn higher_observed_uptime_means_higher_availability() {
        // Statistical form of the paper's claim: "a neighbor with a higher
        // observed session time has a higher availability".
        let mut est = ProbeEstimator::new(NodeId(0), 1.0, vec![NodeId(1), NodeId(2)]);
        let mut r = rng(8);
        for round in 0..100 {
            // Node 1 up 80% of rounds, node 2 up 20%.
            est.probe_round(
                |v| (v == NodeId(1) && round % 5 != 0) || (v == NodeId(2) && round % 5 == 0),
                &mut r,
            );
        }
        assert!(est.availability(NodeId(1)) > est.availability(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = ProbeEstimator::new(NodeId(0), 0.0, vec![]);
    }

    #[test]
    fn rounds_since_alive_tracks_silence() {
        let mut est = estimator();
        let mut r = rng(9);
        est.probe_round(|v| v == NodeId(1), &mut r);
        assert_eq!(est.rounds_since_alive(NodeId(1)), Some(0));
        est.probe_round(|_| false, &mut r);
        est.probe_round(|_| false, &mut r);
        assert_eq!(est.rounds_since_alive(NodeId(1)), Some(2));
        // Never-seen neighbor: silence equals total rounds.
        assert_eq!(est.rounds_since_alive(NodeId(3)), Some(3));
        // Non-neighbor.
        assert_eq!(est.rounds_since_alive(NodeId(42)), None);
    }

    #[test]
    fn replace_neighbor_resets_state() {
        let mut est = estimator();
        let mut r = rng(10);
        for _ in 0..3 {
            est.probe_round(|v| v == NodeId(1), &mut r);
        }
        assert!(est.session_time(NodeId(1)) > 0.0);
        assert!(est.replace_neighbor(NodeId(1), NodeId(7)));
        assert!(est.neighbors().contains(&NodeId(7)));
        assert!(!est.neighbors().contains(&NodeId(1)));
        assert_eq!(est.session_time(NodeId(7)), 0.0);
        assert_eq!(est.session_time(NodeId(1)), 0.0, "old neighbor forgotten");
        // Next sighting re-initialises with the rand(0, T) rule.
        est.probe_round(|v| v == NodeId(7), &mut r);
        let t = est.session_time(NodeId(7));
        assert!((0.0..5.0).contains(&t), "t={t}");
    }

    #[test]
    fn seeded_probe_rounds_are_replayable() {
        let streams = StreamFactory::new(99);
        let mut a = estimator();
        let mut b = estimator();
        for round in 0..6u64 {
            a.probe_round_seeded(&streams, |v| v.index() as u64 % 2 == round % 2);
        }
        for round in 0..6u64 {
            b.probe_round_seeded(&streams, |v| v.index() as u64 % 2 == round % 2);
        }
        assert_eq!(a, b);
        assert!(a.session_time(NodeId(1)) > 0.0);
    }

    #[test]
    fn seeded_draws_do_not_depend_on_other_estimators() {
        // The draw for (owner, slot, round) is keyed by position: advancing
        // a completely different estimator in between must not perturb it.
        let streams = StreamFactory::new(7);
        let mut alone = estimator();
        alone.probe_round_seeded(&streams, |_| true);

        let mut other = ProbeEstimator::new(NodeId(9), 5.0, vec![NodeId(4)]);
        let mut interleaved = estimator();
        other.probe_round_seeded(&streams, |_| true);
        interleaved.probe_round_seeded(&streams, |_| true);
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn maintain_seeded_replaces_silent_neighbors_deterministically() {
        let streams = StreamFactory::new(3);
        let build = || {
            let mut est = ProbeEstimator::new(NodeId(0), 1.0, vec![NodeId(1), NodeId(2)]);
            // Neighbor 1 alive every round, neighbor 2 never seen.
            for _ in 0..4 {
                est.probe_round_seeded(&streams, |v| v == NodeId(1));
                est.maintain_seeded(&streams, 3, 10);
            }
            est
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.neighbors().contains(&NodeId(1)), "live neighbor kept");
        assert!(
            !a.neighbors().contains(&NodeId(2)),
            "silent neighbor replaced"
        );
        assert!(!a.neighbors().contains(&NodeId(0)), "never picks self");
    }

    #[test]
    fn session_time_closed_form_matches_incremental_semantics() {
        // init + k·T after k post-sighting rounds — exactly, not approximately.
        let streams = StreamFactory::new(11);
        let mut est = estimator();
        est.probe_round_seeded(&streams, |v| v == NodeId(1));
        let t0 = est.session_time(NodeId(1));
        for _ in 0..7 {
            est.probe_round_seeded(&streams, |v| v == NodeId(1));
        }
        assert_eq!(est.session_time(NodeId(1)), t0 + 7.0 * 5.0);
    }

    #[test]
    fn replace_rejects_duplicates_and_strangers() {
        let mut est = estimator();
        assert!(
            !est.replace_neighbor(NodeId(1), NodeId(2)),
            "already a neighbor"
        );
        assert!(
            !est.replace_neighbor(NodeId(42), NodeId(7)),
            "not a neighbor"
        );
        assert_eq!(est.neighbors(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }
}
