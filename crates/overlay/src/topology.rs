//! The neighbor relation `D(s)`.
//!
//! §3: "each node randomly selects d nodes as its neighbors" (d = 5 in the
//! paper's experiments). The relation is directed — `v ∈ D(s)` does not
//! imply `s ∈ D(v)` — matching the paper's phrasing that each node
//! *maintains information about* its own d potential forwarders.

use idpa_desim::rng::Xoshiro256StarStar;
use rand::RngExt;

use crate::node::NodeId;

/// A directed, fixed-out-degree neighbor relation over `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
    degree: usize,
}

impl Topology {
    /// Samples a topology where every node independently picks `degree`
    /// distinct random neighbors (never itself).
    ///
    /// Panics if `degree >= n` (a node cannot have `n` distinct non-self
    /// neighbors) or `n == 0`.
    #[must_use]
    pub fn random(n: usize, degree: usize, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(n > 0, "empty topology");
        assert!(
            degree < n,
            "degree {degree} impossible with {n} nodes (needs degree < n)"
        );
        // Partial Fisher-Yates over the candidate set {0..n} \ {s}, run
        // *sparsely*: the candidate array is never materialized. Position
        // `i` of the virtual array holds `i` (or `i + 1` once past the
        // excluded self entry); the handful of slots an earlier swap
        // displaced live in a small map. The draws are `random_range(k..n-1)`
        // either way — bounds depend only on `n`, not on array contents — so
        // the bit stream, and therefore every sampled topology, is identical
        // to the dense construction at O(d) instead of O(n) per node.
        let mut displaced: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut neighbors = Vec::with_capacity(n);
        for s in 0..n {
            displaced.clear();
            let virt = |i: usize| if i < s { i } else { i + 1 };
            let mut chosen = Vec::with_capacity(degree);
            for k in 0..degree {
                let pick = rng.random_range(k..n - 1);
                let picked = displaced.get(&pick).copied().unwrap_or_else(|| virt(pick));
                // Complete the swap: position `pick` inherits position `k`'s
                // value. Position `k` itself is never read again (later
                // draws range over `k+1..`), so only this half matters.
                let at_k = displaced.get(&k).copied().unwrap_or_else(|| virt(k));
                displaced.insert(pick, at_k);
                chosen.push(NodeId(picked));
            }
            chosen.sort_unstable();
            neighbors.push(chosen);
        }
        Topology { neighbors, degree }
    }

    /// Builds a topology from explicit adjacency lists (used by tests and
    /// the worked example of Figs. 1–2). Validates no self-loops and no
    /// duplicate neighbors.
    #[must_use]
    pub fn from_lists(lists: Vec<Vec<NodeId>>) -> Self {
        let n = lists.len();
        let mut degree = 0;
        for (s, nbrs) in lists.iter().enumerate() {
            degree = degree.max(nbrs.len());
            let mut seen = std::collections::HashSet::new();
            for &v in nbrs {
                assert!(v.index() < n, "neighbor {v} out of range");
                assert!(v.index() != s, "self-loop at {s}");
                assert!(seen.insert(v), "duplicate neighbor {v} at node {s}");
            }
        }
        Topology {
            neighbors: lists,
            degree,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the topology has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The configured out-degree `d`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbor set `D(s)`.
    #[must_use]
    pub fn neighbors(&self, s: NodeId) -> &[NodeId] {
        &self.neighbors[s.index()]
    }

    /// Whether `v ∈ D(s)`.
    #[must_use]
    pub fn is_neighbor(&self, s: NodeId, v: NodeId) -> bool {
        self.neighbors[s.index()].binary_search(&v).is_ok()
    }

    /// Nodes that have `v` in their neighbor set (the reverse relation);
    /// O(n·d), intended for analysis, not hot paths.
    #[must_use]
    pub fn reverse_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        (0..self.len())
            .map(NodeId)
            .filter(|&s| s != v && self.is_neighbor(s, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn random_topology_has_exact_degree() {
        let t = Topology::random(40, 5, &mut rng(1));
        assert_eq!(t.len(), 40);
        assert_eq!(t.degree(), 5);
        for s in 0..40 {
            assert_eq!(t.neighbors(NodeId(s)).len(), 5);
        }
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let t = Topology::random(40, 5, &mut rng(2));
        for s in 0..40 {
            let nbrs = t.neighbors(NodeId(s));
            assert!(nbrs.iter().all(|v| v.index() != s));
            let mut uniq = nbrs.to_vec();
            uniq.dedup();
            assert_eq!(uniq.len(), nbrs.len());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Topology::random(20, 4, &mut rng(3));
        let b = Topology::random(20, 4, &mut rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn is_neighbor_agrees_with_lists() {
        let t = Topology::random(15, 3, &mut rng(4));
        for s in 0..15 {
            for v in 0..15 {
                let expect = t.neighbors(NodeId(s)).contains(&NodeId(v));
                assert_eq!(t.is_neighbor(NodeId(s), NodeId(v)), expect);
            }
        }
    }

    #[test]
    fn reverse_neighbors_inverts_relation() {
        let t = Topology::random(12, 3, &mut rng(5));
        for v in 0..12 {
            for s in t.reverse_neighbors(NodeId(v)) {
                assert!(t.is_neighbor(s, NodeId(v)));
            }
        }
    }

    #[test]
    fn degree_saturates_at_n_minus_1() {
        let t = Topology::random(5, 4, &mut rng(6));
        for s in 0..5 {
            assert_eq!(t.neighbors(NodeId(s)).len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "needs degree < n")]
    fn rejects_impossible_degree() {
        let _ = Topology::random(5, 5, &mut rng(7));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_lists_rejects_self_loop() {
        let _ = Topology::from_lists(vec![vec![NodeId(0)]]);
    }

    #[test]
    #[should_panic(expected = "duplicate neighbor")]
    fn from_lists_rejects_duplicates() {
        let _ = Topology::from_lists(vec![vec![NodeId(1), NodeId(1)], vec![]]);
    }

    #[test]
    fn sparse_sampling_matches_dense_reference() {
        // The shipped sampler simulates the candidate array sparsely; this
        // pins it bit-for-bit against the dense partial Fisher-Yates it
        // replaced, across self-exclusion positions and near-full degrees.
        for (n, d, seed) in [
            (40usize, 5usize, 1u64),
            (17, 16, 2),
            (300, 3, 9),
            (6, 5, 10),
        ] {
            let sparse = Topology::random(n, d, &mut rng(seed));
            let mut r = rng(seed);
            let mut lists = Vec::new();
            for s in 0..n {
                let mut candidates: Vec<usize> = (0..n).filter(|&v| v != s).collect();
                let mut chosen = Vec::with_capacity(d);
                for k in 0..d {
                    let pick = r.random_range(k..candidates.len());
                    candidates.swap(k, pick);
                    chosen.push(NodeId(candidates[k]));
                }
                chosen.sort_unstable();
                lists.push(chosen);
            }
            assert_eq!(sparse, Topology::from_lists(lists));
        }
    }

    #[test]
    fn neighbor_choice_is_roughly_uniform() {
        // Aggregate in-degree over many topologies should be near-uniform.
        let n = 10;
        let mut indeg = vec![0usize; n];
        let mut r = rng(8);
        for _ in 0..2000 {
            let t = Topology::random(n, 3, &mut r);
            for s in 0..n {
                for v in t.neighbors(NodeId(s)) {
                    indeg[v.index()] += 1;
                }
            }
        }
        let total: usize = indeg.iter().sum();
        let expected = total as f64 / n as f64;
        for (i, &c) in indeg.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.05,
                "node {i} in-degree {c} vs expected {expected}"
            );
        }
    }
}
