//! Probabilistic batch verification for RSA (blind) signatures — in the
//! quadratic-residue subgroup, attesting validity *up to sign*.
//!
//! The textbook *small-exponents batch test* (Bellare, Garay, Rogaway
//! 1998) checks a batch with one combined equation,
//! `(Π_i sig_i^{t_i})^e ≟ Π_i m_i^{t_i} (mod n)`, with fresh random
//! coefficients `t_i`. Its soundness proof lives in **prime-order**
//! groups. Over `(Z/n)*` it is broken (Boyd–Pavlovski 2000): `-1` is a
//! publicly computable element of order 2, and with odd coefficients
//! `(-1)^{t_i} = -1` deterministically — so negating any *even* number of
//! valid signatures (`sig → n - sig`, each individually invalid for odd
//! `e`) satisfies the combined equation with probability 1.
//!
//! This implementation therefore squares both sides,
//!
//! ```text
//!   (Π_i sig_i^{t_i})^{2e}  ≟  Π_i (m_i^2)^{t_i}   (mod n)
//! ```
//!
//! which moves the check into the quadratic-residue subgroup and kills the
//! `-1` attack — at a documented price: squaring cannot distinguish `sig`
//! from `n - sig`, so a passing batch attests that every signature is
//! valid **up to sign**. A caller that needs strict validity (the bank's
//! deposit path) must verify individually; see the soundness note on
//! [`batch_verify`] and `Bank::deposit_batch`, which does exactly that —
//! at `e = 65537` individual verification through the cached Montgomery
//! context is also *faster* than this equation, so the primitive here is
//! kept for large-exponent settings and for the measured comparison in
//! the `kernels` bench, not for the settlement hot path.
//!
//! The products are built by interleaved multi-exponentiation (Straus):
//! one pass over the λ coefficient bits with two shared squarings per
//! bit, multiplying in the items whose bit is set — all in Montgomery
//! form with a single final decode-free comparison.
//!
//! Determinism: the caller supplies the coefficient stream (position-keyed
//! from the simulation's seed hierarchy), so a batch verdict is a pure
//! function of (key, items, stream) and replays bit-identically.
//!
//! When the combined check fails, [`batch_verify`] falls back to checking
//! each item individually against the same up-to-sign relation and
//! reports exactly the offending indices — the *reported verdict* is
//! never probabilistic, only the fast path's work saving is.

use crate::bigint::BigUint;
use crate::rsa::RsaPublicKey;

/// Verdict of a batch signature check (for the up-to-sign relation
/// `sig^e ≡ ±m (mod n)` — see the module docs for why strict verdicts
/// are impossible for this equation over `(Z/n)*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The combined equation held: every signature in the batch is valid
    /// up to sign (with the soundness caveats on [`batch_verify`]).
    AllValid,
    /// The combined equation failed; the listed indices (ascending) fail
    /// the up-to-sign individual check. Exact, not probabilistic.
    Rejected(Vec<usize>),
}

impl BatchOutcome {
    /// True when the whole batch verified.
    #[must_use]
    pub fn is_all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }
}

/// True when `sig^e ≡ ±m (mod n)` — the relation this module's combined
/// equation decides.
fn verifies_up_to_sign(key: &RsaPublicKey, sig: &BigUint, m: &BigUint) -> bool {
    let n = key.modulus();
    let v = key.raw_verify(sig);
    let mr = m.rem(n);
    if v == mr {
        return true;
    }
    // -m mod n; for mr = 0 the negation is 0 and the first compare decided.
    v == n.sub(&mr).rem(n)
}

/// Batch-checks `(signature, message-representative)` pairs under `key`
/// for the up-to-sign relation `sig^e ≡ ±m (mod n)`.
///
/// `coeff(i)` supplies the random coefficient for item `i`; the low 64
/// bits are used and forced odd (`t_i = coeff(i) | 1`), so every item
/// participates with a nonzero coefficient.
///
/// Soundness (of the fast path): suppose item `j` is invalid up to sign,
/// i.e. `sig_j^e = m_j·δ` with `δ² ≠ 1` in `(Z/n)*`. Fixing all other
/// coefficients, the squared combined equation reads `δ^{2t_j} = c`, and
/// the `t_j` satisfying it fall in at most one residue class modulo
/// `ord(δ²)` — acceptance probability ≤ `1/ord(δ²)` over the 2⁶³ odd
/// 64-bit coefficients, ≈ 2⁻⁶³ for any `δ` an adversary can actually
/// produce: the elements of small order that would inflate it (nontrivial
/// square roots of 1, low-order roots of unity) cannot be computed
/// without factoring `n`. What squaring deliberately waives is the sign:
/// `δ = -1` (a negated valid signature) passes, which is exactly why the
/// bank's deposit path verifies strictly and individually instead of
/// calling this.
///
/// Empty batches are trivially valid.
#[must_use]
pub fn batch_verify(
    key: &RsaPublicKey,
    items: &[(BigUint, BigUint)],
    mut coeff: impl FnMut(usize) -> u64,
) -> BatchOutcome {
    if items.is_empty() {
        return BatchOutcome::AllValid;
    }
    let ctx = key.mont();

    // Montgomery residues of every signature and squared message, plus
    // the odd 64-bit coefficient per item.
    let sigs_m: Vec<Vec<u64>> = items.iter().map(|(sig, _)| ctx.to_mont(sig)).collect();
    let msgs2_m: Vec<Vec<u64>> = items
        .iter()
        .map(|(_, m)| {
            let mm = ctx.to_mont(m);
            ctx.mont_mul(&mm, &mm)
        })
        .collect();
    let ts: Vec<u64> = (0..items.len()).map(|i| coeff(i) | 1).collect();

    // Interleaved Straus multi-exponentiation: acc_s = Π sig_i^{t_i},
    // acc_m = Π (m_i²)^{t_i}, sharing the squaring chain across all items.
    let mut acc_s = ctx.one_mont();
    let mut acc_m = ctx.one_mont();
    for bit in (0..64).rev() {
        acc_s = ctx.mont_mul(&acc_s, &acc_s);
        acc_m = ctx.mont_mul(&acc_m, &acc_m);
        for (i, &t) in ts.iter().enumerate() {
            if (t >> bit) & 1 == 1 {
                acc_s = ctx.mont_mul(&acc_s, &sigs_m[i]);
                acc_m = ctx.mont_mul(&acc_m, &msgs2_m[i]);
            }
        }
    }

    // ((Π sig^t)^e)² — the squaring after the exponentiation is what puts
    // the comparison in the QR subgroup. mont_mul outputs are fully
    // reduced, so residue equality is plain limb equality.
    let lhs = ctx.pow_mont(&acc_s, key.exponent());
    let lhs2 = ctx.mont_mul(&lhs, &lhs);
    if lhs2 == acc_m {
        return BatchOutcome::AllValid;
    }

    // Combined check failed: isolate the offender(s) exactly, against the
    // same up-to-sign relation the equation decides.
    let bad: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, (sig, m))| !verifies_up_to_sign(key, sig, m))
        .map(|(i, _)| i)
        .collect();
    debug_assert!(
        !bad.is_empty(),
        "combined equation failed but every item verifies up to sign"
    );
    BatchOutcome::Rejected(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::sha256::Sha256;
    use idpa_desim::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn signed_batch(kp: &RsaKeyPair, k: usize) -> Vec<(BigUint, BigUint)> {
        (0..k)
            .map(|i| {
                let m = BigUint::from_bytes_be(&Sha256::digest(format!("tok-{i}").as_bytes()))
                    .rem(kp.public().modulus());
                (kp.raw_sign(&m), m)
            })
            .collect()
    }

    /// `sig → n - sig`: individually invalid for strict verification (odd
    /// `e` flips the sign of `sig^e`), valid for the up-to-sign relation.
    fn negate(kp: &RsaKeyPair, sig: &BigUint) -> BigUint {
        kp.public().modulus().sub(sig)
    }

    #[test]
    fn valid_batch_accepts() {
        let kp = RsaKeyPair::generate(256, &mut rng(1));
        let items = signed_batch(&kp, 8);
        let mut r = rng(100);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::AllValid
        );
    }

    #[test]
    fn empty_batch_accepts() {
        let kp = RsaKeyPair::generate(256, &mut rng(2));
        assert!(batch_verify(kp.public(), &[], |_| 1).is_all_valid());
    }

    #[test]
    fn single_forgery_is_isolated() {
        let kp = RsaKeyPair::generate(256, &mut rng(3));
        let mut items = signed_batch(&kp, 8);
        items[5].0 = items[5].0.add(&BigUint::one()).rem(kp.public().modulus());
        let mut r = rng(101);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::Rejected(vec![5])
        );
    }

    #[test]
    fn multiple_forgeries_all_reported() {
        let kp = RsaKeyPair::generate(256, &mut rng(4));
        let mut items = signed_batch(&kp, 6);
        for i in [0, 3] {
            items[i].1 = items[i].1.add(&BigUint::one()).rem(kp.public().modulus());
        }
        let mut r = rng(102);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::Rejected(vec![0, 3])
        );
    }

    /// The Boyd–Pavlovski attack the naive equation fell to: an even
    /// number of negated signatures cancelled in the combined product and
    /// a batch of strictly-invalid items reported `AllValid`. Under the
    /// squared equation the acceptance is the *documented* up-to-sign
    /// semantics (any count of negations, even or odd), and every negated
    /// signature still fails strict individual verification — which is
    /// why strict callers verify per item.
    #[test]
    fn negated_signatures_accept_only_up_to_sign() {
        let kp = RsaKeyPair::generate(256, &mut rng(5));
        for negated in [vec![2usize], vec![1, 3]] {
            let mut items = signed_batch(&kp, 4);
            for &i in &negated {
                items[i].0 = negate(&kp, &items[i].0);
                // Strictly invalid: sig^e = -m ≠ m.
                let (sig, m) = &items[i];
                assert_ne!(
                    kp.public().raw_verify(sig),
                    m.rem(kp.public().modulus()),
                    "negated signature must fail strict verification"
                );
            }
            let mut r = rng(103);
            assert_eq!(
                batch_verify(kp.public(), &items, |_| r.next()),
                BatchOutcome::AllValid,
                "up-to-sign relation accepts ±sig by contract ({negated:?} negated)"
            );
        }
    }

    /// A negation (valid up to sign) must not mask a real forgery in the
    /// same batch, and must not itself be reported.
    #[test]
    fn negation_does_not_mask_a_real_forgery() {
        let kp = RsaKeyPair::generate(256, &mut rng(6));
        let mut items = signed_batch(&kp, 6);
        items[1].0 = negate(&kp, &items[1].0);
        items[4].0 = items[4].0.add(&BigUint::one()).rem(kp.public().modulus());
        let mut r = rng(104);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::Rejected(vec![4])
        );
    }

    #[test]
    fn verdict_is_deterministic_in_the_coefficient_stream() {
        let kp = RsaKeyPair::generate(256, &mut rng(7));
        let items = signed_batch(&kp, 4);
        let run = |seed| {
            let mut r = rng(seed);
            batch_verify(kp.public(), &items, |_| r.next())
        };
        assert_eq!(run(7), run(7));
    }
}
