//! Probabilistic batch verification for RSA (blind) signatures.
//!
//! The bank settles an epoch by checking thousands of token signatures
//! under one public key. Verifying each token alone costs one `sig^e mod n`
//! exponentiation. The *small-exponents batch test* (Bellare, Garay,
//! Rogaway 1998) checks the whole batch with one combined equation:
//!
//! ```text
//!   (Π_i sig_i^{t_i})^e  ≟  Π_i m_i^{t_i}   (mod n)
//! ```
//!
//! with fresh random coefficients `t_i`. If every signature is valid the
//! equation always holds. If any is invalid, the equation holds with
//! probability at most ~2^-(λ-1) over the choice of λ-bit coefficients
//! (see the soundness note on [`batch_verify`]). The products are built by
//! interleaved multi-exponentiation (Straus): one pass over the λ
//! coefficient bits with two shared squarings per bit, multiplying in the
//! items whose bit is set — all in Montgomery form with a single final
//! decode-free comparison.
//!
//! Determinism: the caller supplies the coefficient stream (position-keyed
//! from the simulation's seed hierarchy), so a batch verdict is a pure
//! function of (key, items, stream) and replays bit-identically.
//!
//! When the combined check fails, [`batch_verify`] falls back to verifying
//! each item individually and reports exactly the offending indices — so
//! the cheater-flagging path above it stays exact, never probabilistic.

use crate::bigint::BigUint;
use crate::rsa::RsaPublicKey;

/// Verdict of a batch signature check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The combined equation held: every signature in the batch is valid
    /// (up to the ~2^-63 soundness error of the probabilistic test).
    AllValid,
    /// The combined equation failed; the listed indices (ascending) failed
    /// individual verification. Exact, not probabilistic.
    Rejected(Vec<usize>),
}

impl BatchOutcome {
    /// True when the whole batch verified.
    #[must_use]
    pub fn is_all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }
}

/// Batch-verifies `(signature, message-representative)` pairs under `key`.
///
/// `coeff(i)` supplies the random coefficient for item `i`; the low 64 bits
/// are used and forced odd (`t_i = coeff(i) | 1`), so every item
/// participates with a nonzero coefficient. Soundness: suppose item `j` is
/// invalid, i.e. `sig_j^e = m_j·δ` with `δ ≠ 1` in `(Z/n)`. Fixing all
/// other coefficients, the combined equation reads `δ^{t_j} = c` for a
/// constant `c`, and the number of `t_j` in the coefficient range
/// satisfying it is at most the order-dependent solution count of that
/// exponential equation — at most one residue class modulo
/// `ord(δ) ≥ 2`, hence at most half the 2^63 odd 64-bit values. The test
/// therefore accepts an invalid batch with probability ≤ 2^-62 per trial
/// (and the fallback pass below removes even that residual from the
/// *reported verdict*; only the fast path's work saving is probabilistic).
///
/// Empty batches are trivially valid.
#[must_use]
pub fn batch_verify(
    key: &RsaPublicKey,
    items: &[(BigUint, BigUint)],
    mut coeff: impl FnMut(usize) -> u64,
) -> BatchOutcome {
    if items.is_empty() {
        return BatchOutcome::AllValid;
    }
    let ctx = key.mont();

    // Montgomery residues of every signature and message, plus the odd
    // 64-bit coefficient per item.
    let sigs_m: Vec<Vec<u64>> = items.iter().map(|(sig, _)| ctx.to_mont(sig)).collect();
    let msgs_m: Vec<Vec<u64>> = items.iter().map(|(_, m)| ctx.to_mont(m)).collect();
    let ts: Vec<u64> = (0..items.len()).map(|i| coeff(i) | 1).collect();

    // Interleaved Straus multi-exponentiation: acc_s = Π sig_i^{t_i},
    // acc_m = Π m_i^{t_i}, sharing the squaring chain across all items.
    let mut acc_s = ctx.one_mont();
    let mut acc_m = ctx.one_mont();
    for bit in (0..64).rev() {
        acc_s = ctx.mont_mul(&acc_s, &acc_s);
        acc_m = ctx.mont_mul(&acc_m, &acc_m);
        for (i, &t) in ts.iter().enumerate() {
            if (t >> bit) & 1 == 1 {
                acc_s = ctx.mont_mul(&acc_s, &sigs_m[i]);
                acc_m = ctx.mont_mul(&acc_m, &msgs_m[i]);
            }
        }
    }

    // (Π sig^t)^e, staying in Montgomery form; mont_mul outputs are fully
    // reduced, so residue equality is plain limb equality.
    let lhs = ctx.pow_mont(&acc_s, key.exponent());
    if lhs == acc_m {
        return BatchOutcome::AllValid;
    }

    // Combined check failed: isolate the offender(s) exactly.
    let n = key.modulus();
    let bad: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, (sig, m))| key.raw_verify(sig) != m.rem(n))
        .map(|(i, _)| i)
        .collect();
    debug_assert!(
        !bad.is_empty(),
        "combined equation failed but every item verifies individually"
    );
    BatchOutcome::Rejected(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::sha256::Sha256;
    use idpa_desim::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn signed_batch(kp: &RsaKeyPair, k: usize) -> Vec<(BigUint, BigUint)> {
        (0..k)
            .map(|i| {
                let m = BigUint::from_bytes_be(&Sha256::digest(format!("tok-{i}").as_bytes()))
                    .rem(kp.public().modulus());
                (kp.raw_sign(&m), m)
            })
            .collect()
    }

    #[test]
    fn valid_batch_accepts() {
        let kp = RsaKeyPair::generate(256, &mut rng(1));
        let items = signed_batch(&kp, 8);
        let mut r = rng(100);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::AllValid
        );
    }

    #[test]
    fn empty_batch_accepts() {
        let kp = RsaKeyPair::generate(256, &mut rng(2));
        assert!(batch_verify(kp.public(), &[], |_| 1).is_all_valid());
    }

    #[test]
    fn single_forgery_is_isolated() {
        let kp = RsaKeyPair::generate(256, &mut rng(3));
        let mut items = signed_batch(&kp, 8);
        items[5].0 = items[5].0.add(&BigUint::one()).rem(kp.public().modulus());
        let mut r = rng(101);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::Rejected(vec![5])
        );
    }

    #[test]
    fn multiple_forgeries_all_reported() {
        let kp = RsaKeyPair::generate(256, &mut rng(4));
        let mut items = signed_batch(&kp, 6);
        for i in [0, 3] {
            items[i].1 = items[i].1.add(&BigUint::one()).rem(kp.public().modulus());
        }
        let mut r = rng(102);
        assert_eq!(
            batch_verify(kp.public(), &items, |_| r.next()),
            BatchOutcome::Rejected(vec![0, 3])
        );
    }

    #[test]
    fn verdict_is_deterministic_in_the_coefficient_stream() {
        let kp = RsaKeyPair::generate(256, &mut rng(5));
        let items = signed_batch(&kp, 4);
        let run = |seed| {
            let mut r = rng(seed);
            batch_verify(kp.public(), &items, |_| r.next())
        };
        assert_eq!(run(7), run(7));
    }
}
