//! Chaum blind signatures over RSA.
//!
//! The anonymity requirement the paper places on its payment system is that
//! "in trying to increase the system anonymity, the payment mechanism does
//! not actually decrease it" (§5): the bank must be able to issue and
//! settle payment value without linking a settled token back to the
//! withdrawal — otherwise payments would deanonymise initiators. Chaum's
//! construction achieves exactly that:
//!
//! 1. the withdrawer picks a random blinding factor `r` coprime to `n` and
//!    asks the bank to sign `m·r^e mod n`;
//! 2. the bank signs blindly: `(m·r^e)^d = m^d·r mod n`;
//! 3. the withdrawer divides by `r`, obtaining the ordinary signature
//!    `m^d mod n` — which the bank has never seen together with `m`.

use idpa_desim::rng::Xoshiro256StarStar;

use crate::bigint::BigUint;
use crate::prime::random_below;
use crate::rsa::{RsaKeyPair, RsaPublicKey};

/// A blinding factor `r` and its precomputed inverse.
#[derive(Debug, Clone)]
pub struct BlindingFactor {
    r: BigUint,
    r_inv: BigUint,
}

impl BlindingFactor {
    /// Samples a blinding factor coprime to the key's modulus.
    #[must_use]
    pub fn random(key: &RsaPublicKey, rng: &mut Xoshiro256StarStar) -> Self {
        let n = key.modulus();
        loop {
            let r = random_below(n, rng);
            if r.is_zero() {
                continue;
            }
            if let Some(r_inv) = r.mod_inverse(n) {
                return BlindingFactor { r, r_inv };
            }
        }
    }

    /// Blinds message representative `m`: returns `m·r^e mod n`.
    #[must_use]
    pub fn blind(&self, key: &RsaPublicKey, m: &BigUint) -> BigUint {
        // r^e through the key's cached Montgomery context — the same
        // context every other operation under this modulus shares.
        let r_e = key.mont().modpow(&self.r, key.exponent());
        m.mulmod(&r_e, key.modulus())
    }

    /// Unblinds a blind signature: returns `sig_blind · r^{-1} mod n`.
    #[must_use]
    pub fn unblind(&self, key: &RsaPublicKey, blind_sig: &BigUint) -> BigUint {
        blind_sig.mulmod(&self.r_inv, key.modulus())
    }
}

/// Signs a blinded message — what the bank executes. Split out as a free
/// function to make the trust boundary explicit at call sites: the bank
/// sees only the blinded representative.
#[must_use]
pub fn bank_sign_blinded(bank_key: &RsaKeyPair, blinded: &BigUint) -> BigUint {
    bank_key.raw_sign(blinded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn setup(seed: u64) -> (RsaKeyPair, Xoshiro256StarStar) {
        let mut r = rng(seed);
        let kp = RsaKeyPair::generate(256, &mut r);
        (kp, r)
    }

    fn digest_of(serial: &[u8], n: &BigUint) -> BigUint {
        BigUint::from_bytes_be(&Sha256::digest(serial)).rem(n)
    }

    #[test]
    fn blind_signature_verifies_as_ordinary_signature() {
        let (bank, mut r) = setup(1);
        let m = digest_of(b"token-serial-0001", bank.public().modulus());

        let bf = BlindingFactor::random(bank.public(), &mut r);
        let blinded = bf.blind(bank.public(), &m);
        let blind_sig = bank_sign_blinded(&bank, &blinded);
        let sig = bf.unblind(bank.public(), &blind_sig);

        // The unblinded signature equals a direct signature on m.
        assert_eq!(sig, bank.raw_sign(&m));
        assert_eq!(bank.public().raw_verify(&sig), m);
    }

    #[test]
    fn bank_never_sees_the_message() {
        // Unlinkability's mechanical core: the blinded representative
        // differs from the message, and differs across blinding factors.
        let (bank, mut r) = setup(2);
        let m = digest_of(b"serial", bank.public().modulus());
        let bf1 = BlindingFactor::random(bank.public(), &mut r);
        let bf2 = BlindingFactor::random(bank.public(), &mut r);
        let b1 = bf1.blind(bank.public(), &m);
        let b2 = bf2.blind(bank.public(), &m);
        assert_ne!(b1, m);
        assert_ne!(b2, m);
        assert_ne!(b1, b2, "same message blinds to different values");
    }

    #[test]
    fn unblinding_with_wrong_factor_fails_verification() {
        let (bank, mut r) = setup(3);
        let m = digest_of(b"serial-x", bank.public().modulus());
        let bf = BlindingFactor::random(bank.public(), &mut r);
        let wrong = BlindingFactor::random(bank.public(), &mut r);
        let blind_sig = bank_sign_blinded(&bank, &bf.blind(bank.public(), &m));
        let sig = wrong.unblind(bank.public(), &blind_sig);
        assert_ne!(bank.public().raw_verify(&sig), m);
    }

    #[test]
    fn forged_signature_fails() {
        let (bank, mut r) = setup(4);
        let m = digest_of(b"serial-y", bank.public().modulus());
        let forged = random_below(bank.public().modulus(), &mut r);
        assert_ne!(bank.public().raw_verify(&forged), m);
    }

    #[test]
    fn many_tokens_all_verify() {
        let (bank, mut r) = setup(5);
        for i in 0..10 {
            let serial = format!("token-{i}");
            let m = digest_of(serial.as_bytes(), bank.public().modulus());
            let bf = BlindingFactor::random(bank.public(), &mut r);
            let sig = bf.unblind(
                bank.public(),
                &bank_sign_blinded(&bank, &bf.blind(bank.public(), &m)),
            );
            assert_eq!(bank.public().raw_verify(&sig), m, "token {i}");
        }
    }
}
