//! ChaCha20 stream cipher (RFC 8439), used to seal the layered contract and
//! confirmation records that flow along a forwarding path, so intermediate
//! forwarders cannot read the initiator's identity or payment terms meant
//! for other hops.

/// ChaCha20 keystream generator / stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    /// Unused keystream bytes from the current block.
    pending: [u8; 64],
    pending_off: usize,
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and 96-bit nonce, with the block
    /// counter starting at `counter` (RFC 8439 uses 1 for encryption).
    #[must_use]
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(
                chunk
                    .try_into()
                    .expect("chunks_exact(4) yields 4-byte slices"),
            );
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(
                chunk
                    .try_into()
                    .expect("chunks_exact(4) yields 4-byte slices"),
            );
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
            pending: [0; 64],
            pending_off: 64,
        }
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut x = state;
        for _ in 0..10 {
            // Column rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = x[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place (encryption == decryption).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.pending_off == 64 {
                self.pending = self.block(self.counter);
                self.counter = self.counter.checked_add(1).expect("keystream exhausted");
                self.pending_off = 0;
            }
            *byte ^= self.pending[self.pending_off];
            self.pending_off += 1;
        }
    }

    /// Convenience: returns the encryption of `data` without mutating it.
    #[must_use]
    pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce, 1).apply(&mut out);
        out
    }

    /// Convenience: inverse of [`ChaCha20::encrypt`].
    #[must_use]
    pub fn decrypt(key: &[u8; 32], nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        // Symmetric cipher: same operation.
        ChaCha20::encrypt(key, nonce, data)
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key = rfc_key();
        let nonce = [0u8, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let c = ChaCha20::new(&key, &nonce, 1);
        let block = c.block(1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        // Words 12..16 of the §2.3.2 state after the block function are
        // d19c12b5 b94e16de e883d0cb 4e3c50a2, serialized little-endian.
        assert_eq!(hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key = rfc_key();
        let nonce = [0u8, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::encrypt(&key, &nonce, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(ct.len(), plaintext.len());
        assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), plaintext);
    }

    #[test]
    fn round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg = b"initiator identity must not leak".to_vec();
        let ct = ChaCha20::encrypt(&key, &nonce, &msg);
        assert_ne!(ct, msg);
        assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), msg);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let msg: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let oneshot = ChaCha20::encrypt(&key, &nonce, &msg);
        let mut streamed = msg.clone();
        let mut c = ChaCha20::new(&key, &nonce, 1);
        // Apply in uneven pieces crossing the 64-byte block boundary.
        let (a, rest) = streamed.split_at_mut(10);
        c.apply(a);
        let (b, tail) = rest.split_at_mut(120);
        c.apply(b);
        c.apply(tail);
        assert_eq!(streamed, oneshot);
    }

    #[test]
    fn different_nonces_give_different_keystreams() {
        let key = [5u8; 32];
        let msg = vec![0u8; 64];
        let a = ChaCha20::encrypt(&key, &[0u8; 12], &msg);
        let b = ChaCha20::encrypt(&key, &[1u8; 12], &msg);
        assert_ne!(a, b);
    }

    #[test]
    fn layered_onion_peels_in_reverse() {
        // Two layers of sealing, peeled in reverse order, recover plaintext:
        // the pattern used for contract propagation along a path.
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        let nonce = [0u8; 12];
        let msg = b"contract: Pf=50 Pr=100".to_vec();
        let layer1 = ChaCha20::encrypt(&k1, &nonce, &msg);
        let layer2 = ChaCha20::encrypt(&k2, &nonce, &layer1);
        let peel2 = ChaCha20::decrypt(&k2, &nonce, &layer2);
        let peel1 = ChaCha20::decrypt(&k1, &nonce, &peel2);
        assert_eq!(peel1, msg);
    }
}
