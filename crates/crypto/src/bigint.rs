//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, always normalized (no trailing zero limbs;
//! zero is the empty limb vector). Provides exactly the operations RSA
//! needs: comparison, add/sub, schoolbook multiply, Knuth Algorithm D
//! division, modular exponentiation by square-and-multiply, extended
//! Euclid for modular inverses.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a single machine word.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        if x == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![x] }
        }
    }

    /// From a 128-bit value.
    #[must_use]
    pub fn from_u128(x: u128) -> Self {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// From big-endian bytes (the conventional wire format for RSA values).
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes, minimal length (empty for zero).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// The little-endian limbs (no trailing zeros). For interop with
    /// limb-level algorithms (Montgomery arithmetic).
    #[must_use]
    pub fn to_limbs(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Builds from little-endian limbs (trailing zeros allowed).
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the lowest bit is set.
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Whether the value fits and equals the given u64.
    #[must_use]
    pub fn eq_u64(&self, x: u64) -> bool {
        match (self.limbs.len(), x) {
            (0, 0) => true,
            (1, _) => self.limbs[0] == x,
            _ => false,
        }
    }

    /// Bit length (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (false beyond the top).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i`, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Three-way comparison.
    #[must_use]
    pub fn cmp_ref(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &al) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = al.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics if `other > self`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_ref(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook; fine at RSA sizes).
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> Self {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..out.len() {
                let hi = out.get(i + 1).copied().unwrap_or(0);
                out[i] = (out[i] >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `(self / divisor, self % divisor)`; panics on division by zero.
    #[must_use]
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_ref(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.divrem_knuth(divisor)
    }

    /// Fast path: divide by a single limb.
    fn divrem_u64(&self, d: u64) -> (Self, u64) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            q[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        let mut qn = BigUint { limbs: q };
        qn.normalize();
        (qn, rem as u64)
    }

    /// Knuth TAOCP Vol. 2, Algorithm 4.3.1 D.
    fn divrem_knuth(&self, divisor: &Self) -> (Self, Self) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top bit is set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // extra high limb u[m+n]

        let mut q = vec![0u64; m + 1];
        const B: u128 = 1 << 64;

        // D2-D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat.
            let top = (u128::from(u[j + n]) << 64) | u128::from(u[j + n - 1]);
            let mut qhat = top / u128::from(v[n - 1]);
            let mut rhat = top % u128::from(v[n - 1]);
            while qhat >= B || qhat * u128::from(v[n - 2]) > (rhat << 64) + u128::from(u[j + n - 2])
            {
                qhat -= 1;
                rhat += u128::from(v[n - 1]);
                if rhat >= B {
                    break;
                }
            }

            // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * u128::from(v[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(u[j + i]) - ((p as u64) as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(u[j + n]) - (carry as i128) + borrow;
            u[j + n] = sub as u64;

            // D5/D6: if we subtracted too much, add back.
            if sub < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u128::from(u[j + i]) + u128::from(v[i]) + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut remainder = BigUint {
            limbs: u[..n].to_vec(),
        };
        remainder.normalize();
        (quotient, remainder.shr(shift))
    }

    /// `self % modulus`.
    #[must_use]
    pub fn rem(&self, modulus: &Self) -> Self {
        self.divrem(modulus).1
    }

    /// `self * other mod modulus`.
    #[must_use]
    pub fn mulmod(&self, other: &Self, modulus: &Self) -> Self {
        self.mul(other).rem(modulus)
    }

    /// `self ^ exponent mod modulus` by left-to-right square-and-multiply.
    /// `modulus` must be ≥ 2.
    #[must_use]
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(
            !modulus.is_zero() && !modulus.is_one(),
            "modpow needs modulus >= 2"
        );
        if exponent.is_zero() {
            return BigUint::one();
        }
        let base = self.rem(modulus);
        let mut acc = BigUint::one();
        for i in (0..exponent.bits()).rev() {
            acc = acc.mulmod(&acc, modulus);
            if exponent.bit(i) {
                acc = acc.mulmod(&base, modulus);
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: `x` with `self·x ≡ 1 (mod modulus)`, or `None` when
    /// `gcd(self, modulus) != 1`. Extended Euclid with sign tracking.
    #[must_use]
    pub fn mod_inverse(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Invariants: r_old = s_old_sign * s_old * self (mod modulus) etc.
        let mut r_old = self.rem(modulus);
        let mut r_new = modulus.clone();
        // Coefficients of `self`: (value, is_negative).
        let mut s_old = (BigUint::one(), false);
        let mut s_new = (BigUint::zero(), false);
        // Loop computes gcd(self mod m, m) while tracking Bezout coefficient.
        while !r_new.is_zero() {
            let (q, r) = r_old.divrem(&r_new);
            r_old = std::mem::replace(&mut r_new, r);
            // s = s_old - q * s_new  (signed arithmetic on magnitudes)
            let q_s_new = q.mul(&s_new.0);
            let s = signed_sub(&s_old, &(q_s_new, s_new.1));
            s_old = std::mem::replace(&mut s_new, s);
        }
        if !r_old.is_one() {
            return None;
        }
        // Map the signed coefficient into [0, modulus).
        let (mag, neg) = s_old;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.sub(&mag)
        } else {
            mag
        })
    }
}

/// `a - b` on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (a.0.add(&b.0), false),
        (true, false) => (a.0.add(&b.0), true),
        // Same sign: compare magnitudes.
        (a_neg, _) => {
            if a.0.cmp_ref(&b.0) != Ordering::Less {
                (a.0.sub(&b.0), a_neg)
            } else {
                (b.0.sub(&a.0), !a_neg)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_ref(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(x: u128) -> BigUint {
        BigUint::from_u128(x)
    }

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::from_u64(0).is_zero());
        assert_eq!(BigUint::from_u128(u128::from(u64::MAX) + 1).bits(), 65);
    }

    #[test]
    fn byte_round_trip() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0xff],
            &[1, 0],
            &[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05],
        ];
        for &bytes in cases {
            let n = BigUint::from_bytes_be(bytes);
            let back = n.to_bytes_be();
            // Leading zeros are dropped.
            let canonical: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, canonical, "input {bytes:?}");
        }
    }

    #[test]
    fn from_bytes_ignores_leading_zeros() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn add_matches_u128() {
        let pairs = [
            (0u128, 0u128),
            (1, 2),
            (u64::MAX as u128, 1),
            (1 << 100, 1 << 99),
        ];
        for (a, b) in pairs {
            assert_eq!(big(a).add(&big(b)), big(a + b));
        }
    }

    #[test]
    fn sub_matches_u128() {
        let pairs = [(5u128, 3u128), (u128::MAX / 2, 12345), (1 << 64, 1)];
        for (a, b) in pairs {
            assert_eq!(big(a).sub(&big(b)), big(a - b));
        }
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let pairs = [(0u128, 7u128), (3, 4), (u64::MAX as u128, u64::MAX as u128)];
        for (a, b) in pairs {
            assert_eq!(big(a).mul(&big(b)), big(a * b));
        }
    }

    #[test]
    fn mul_large_cross_check() {
        // (2^200 - 1)^2 = 2^400 - 2^201 + 1
        let mut a = BigUint::zero();
        for i in 0..200 {
            a.set_bit(i);
        }
        let sq = a.mul(&a);
        let mut expect = BigUint::zero();
        expect.set_bit(400);
        let mut sub = BigUint::zero();
        sub.set_bit(201);
        let expect = expect.sub(&sub).add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts_match_u128() {
        let x = 0xdead_beef_cafe_babe_u128;
        // u128 reference is only valid while x << s does not overflow.
        for s in [0, 1, 7, 63, 64] {
            assert_eq!(big(x).shl(s), big(x << s), "shl {s}");
        }
        // Beyond u128: verify structurally via shr round trip and bit count.
        for s in [65usize, 100, 300] {
            let shifted = big(x).shl(s);
            assert_eq!(shifted.bits(), 64 + s);
            assert_eq!(shifted.shr(s), big(x), "shl/shr round trip {s}");
        }
        for s in [0, 1, 7, 63, 64, 65, 127, 200] {
            let expect = if s >= 128 { 0 } else { x >> s };
            assert_eq!(big(x).shr(s), big(expect), "shr {s}");
        }
    }

    #[test]
    fn divrem_small_cases() {
        let (q, r) = big(17).divrem(&big(5));
        assert_eq!((q, r), (big(3), big(2)));
        let (q, r) = big(5).divrem(&big(17));
        assert_eq!((q, r), (big(0), big(5)));
        let (q, r) = big(17).divrem(&big(17));
        assert_eq!((q, r), (big(1), big(0)));
    }

    #[test]
    fn divrem_matches_u128() {
        let pairs = [
            (u128::MAX, 3u128),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, (u64::MAX as u128) + 1),
            ((1 << 127) + 12345, (1 << 65) + 7),
        ];
        for (a, b) in pairs {
            let (q, r) = big(a).divrem(&big(b));
            assert_eq!(q, big(a / b), "q for {a}/{b}");
            assert_eq!(r, big(a % b), "r for {a}%{b}");
        }
    }

    #[test]
    fn divrem_knuth_addback_branch() {
        // A case constructed to exercise the rare D6 add-back: dividend
        // with pattern forcing qhat overestimation.
        let u = BigUint {
            limbs: vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff],
        };
        let v = BigUint {
            limbs: vec![1, 0x8000_0000_0000_0000],
        };
        let (q, r) = u.divrem(&v);
        // Verify by reconstruction.
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r.cmp_ref(&v) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).divrem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        // 4^13 mod 497 = 445 (classic worked example)
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        // Fermat: a^(p-1) ≡ 1 mod p for prime p
        assert_eq!(big(2).modpow(&big(1_000_002), &big(1_000_003)), big(1));
        // exponent zero
        assert_eq!(big(99).modpow(&BigUint::zero(), &big(7)), big(1));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(5)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
    }

    #[test]
    fn mod_inverse_small() {
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(big(3).mod_inverse(&big(11)), Some(big(4)));
        // No inverse when not coprime.
        assert_eq!(big(6).mod_inverse(&big(9)), None);
        // Inverse of 1 is 1.
        assert_eq!(big(1).mod_inverse(&big(7)), Some(big(1)));
    }

    #[test]
    fn mod_inverse_verifies() {
        let m = big(1_000_003); // prime
        for a in [2u128, 3, 999, 123_456, 1_000_002] {
            let inv = big(a).mod_inverse(&m).expect("coprime");
            assert_eq!(big(a).mulmod(&inv, &m), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn bits_and_bit_access() {
        let mut x = BigUint::zero();
        assert_eq!(x.bits(), 0);
        x.set_bit(70);
        assert_eq!(x.bits(), 71);
        assert!(x.bit(70));
        assert!(!x.bit(69));
        assert!(!x.bit(500));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(big(1 << 64) > big(u64::MAX as u128));
        assert_eq!(big(42).cmp_ref(&big(42)), Ordering::Equal);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", BigUint::zero()), "0x0");
        assert_eq!(format!("{:?}", big(0xdead)), "0xdead");
        assert_eq!(
            format!("{:?}", big((1u128 << 64) + 0xff)),
            "0x100000000000000ff"
        );
    }
}
