//! Montgomery modular arithmetic (CIOS), the fast path for RSA-scale
//! `modpow`.
//!
//! Plain `modpow` performs a full Knuth division after every multiply;
//! Montgomery form replaces each of those divisions with a fused
//! multiply-reduce (the Coarsely Integrated Operand Scanning method),
//! cutting RSA signing time several-fold at 512–1024-bit sizes. The
//! context is reusable across operations under the same (odd) modulus —
//! exactly the bank-key usage pattern of the payment system.

use crate::bigint::BigUint;

/// Precomputed context for Montgomery arithmetic modulo an odd modulus.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// The modulus `n` as limbs, little-endian.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64·len(n))`, used to enter Montgomery form.
    r2: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context; the modulus must be odd and ≥ 3 (RSA moduli are).
    #[must_use]
    pub fn new(modulus: &BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery needs an odd modulus");
        assert!(modulus.bits() >= 2, "modulus too small");
        let n = modulus.to_limbs();

        // n' = -n^{-1} mod 2^64 via Newton iteration (Hensel lifting):
        // x_{k+1} = x_k (2 - n x_k) doubles correct low bits per step.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();

        // R^2 mod n computed with plain BigUint arithmetic (setup only).
        let r2_big = BigUint::one().shl(64 * n.len() * 2).rem(modulus);
        let mut r2 = r2_big.to_limbs();
        r2.resize(n.len(), 0);

        MontgomeryCtx { n, n_prime, r2 }
    }

    /// Limb count `s` of the modulus.
    pub(crate) fn s(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n`.
    /// Inputs are limb vectors of length `s` (Montgomery residues).
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.s();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        // t has s + 2 limbs.
        let mut t = vec![0u64; s + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..s {
                let sum = u128::from(t[j]) + u128::from(ai) * u128::from(b[j]) + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = u128::from(t[s]) + carry;
            t[s] = sum as u64;
            t[s + 1] = (sum >> 64) as u64;

            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (u128::from(t[0]) + u128::from(m) * u128::from(self.n[0])) >> 64;
            for j in 1..s {
                let sum = u128::from(t[j]) + u128::from(m) * u128::from(self.n[j]) + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = u128::from(t[s]) + carry;
            t[s - 1] = sum as u64;
            t[s] = t[s + 1] + ((sum >> 64) as u64);
            t[s + 1] = 0;
        }
        // Conditional final subtraction: t may be in [0, 2n). When the
        // overflow limb t[s] is set, the value is R + out and the borrow
        // of the limb-level subtraction cancels against it.
        let mut out = t[..s].to_vec();
        let overflow = t[s] != 0;
        if overflow || !less_than(&out, &self.n) {
            let borrow = sub_in_place(&mut out, &self.n);
            debug_assert_eq!(borrow, overflow, "CIOS range invariant violated");
        }
        out
    }

    /// Converts into Montgomery form: `a·R mod n`.
    pub(crate) fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut limbs = a.rem(&self.modulus_big()).to_limbs();
        limbs.resize(self.s(), 0);
        self.mont_mul(&limbs, &self.r2)
    }

    /// `1` in Montgomery form (`R mod n`), the multiplicative identity of
    /// [`Self::mont_mul`].
    pub(crate) fn one_mont(&self) -> Vec<u64> {
        self.to_mont(&BigUint::one())
    }

    /// Converts out of Montgomery form.
    pub(crate) fn decode_mont(&self, a: &[u64]) -> BigUint {
        let one: Vec<u64> = std::iter::once(1u64)
            .chain(std::iter::repeat(0))
            .take(self.s())
            .collect();
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    fn modulus_big(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// `base^exponent mod n` by left-to-right square-and-multiply entirely
    /// in Montgomery form.
    #[must_use]
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&self.modulus_big());
        }
        let base_m = self.to_mont(base);
        // acc = 1 in Montgomery form = R mod n = mont(1).
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exponent.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.decode_mont(&acc)
    }

    /// `base^exponent mod n` by 4-bit fixed-window exponentiation.
    ///
    /// The window trades 14 table-building multiplies for one multiply per
    /// 4 squarings instead of (on average) one per 2, so it only pays off
    /// on long dense exponents — RSA private exponents, not `e = 65537`
    /// (17 bits, Hamming weight 2, for which binary is already near
    /// optimal). Short exponents therefore delegate to [`Self::modpow`].
    #[must_use]
    pub fn modpow_window(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        const WINDOW: usize = 4;
        let bits = exponent.bits();
        if bits <= 64 {
            return self.modpow(base, exponent);
        }
        let base_m = self.to_mont(base);
        // table[w] = base^w in Montgomery form, w in 0..16.
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(self.one_mont());
        for w in 1..1usize << WINDOW {
            table.push(self.mont_mul(&table[w - 1], &base_m));
        }
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.one_mont();
        for wi in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut w = 0usize;
            for b in 0..WINDOW {
                let bit = wi * WINDOW + (WINDOW - 1 - b);
                w <<= 1;
                if bit < bits && exponent.bit(bit) {
                    w |= 1;
                }
            }
            if w != 0 {
                acc = self.mont_mul(&acc, &table[w]);
            }
        }
        self.decode_mont(&acc)
    }

    /// `base^exponent` staying in Montgomery form: `base_m` is a Montgomery
    /// residue and so is the result. Used by the batch verifier, which
    /// builds products in Montgomery form and only decodes once.
    pub(crate) fn pow_mont(&self, base_m: &[u64], exponent: &BigUint) -> Vec<u64> {
        let mut acc = self.one_mont();
        for i in (0..exponent.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, base_m);
            }
        }
        acc
    }
}

/// `a < b` over equal-length little-endian limb slices.
fn less_than(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// `a -= b` over equal-length limb slices; returns whether a final borrow
/// occurred (expected exactly when the value had an overflow limb).
fn sub_in_place(a: &mut [u64], b: &[u64]) -> bool {
    let mut borrow = 0u64;
    for (x, &y) in a.iter_mut().zip(b) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    borrow != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::{generate_prime, random_bits};
    use idpa_desim::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn matches_plain_modpow_small() {
        let n = BigUint::from_u64(1_000_003); // odd prime
        let ctx = MontgomeryCtx::new(&n);
        for (b, e) in [(2u64, 10u64), (3, 0), (12345, 67890), (999_999, 1_000_002)] {
            let base = BigUint::from_u64(b);
            let exp = BigUint::from_u64(e);
            assert_eq!(
                ctx.modpow(&base, &exp),
                base.modpow(&exp, &n),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn matches_plain_modpow_rsa_sized() {
        let mut r = rng(1);
        let p = generate_prime(128, &mut r);
        let q = generate_prime(128, &mut r);
        let n = p.mul(&q);
        let ctx = MontgomeryCtx::new(&n);
        for _ in 0..10 {
            let base = random_bits(256, &mut r);
            let exp = random_bits(128, &mut r);
            assert_eq!(ctx.modpow(&base, &exp), base.modpow(&exp, &n));
        }
    }

    #[test]
    fn handles_base_larger_than_modulus() {
        let n = BigUint::from_u64(101);
        let ctx = MontgomeryCtx::new(&n);
        let base = BigUint::from_u64(123_456_789);
        let exp = BigUint::from_u64(17);
        assert_eq!(ctx.modpow(&base, &exp), base.modpow(&exp, &n));
    }

    #[test]
    fn zero_exponent_yields_one() {
        let n = BigUint::from_u64(97);
        let ctx = MontgomeryCtx::new(&n);
        assert_eq!(
            ctx.modpow(&BigUint::from_u64(5), &BigUint::zero()),
            BigUint::one()
        );
    }

    #[test]
    fn fermat_little_theorem_via_montgomery() {
        let mut r = rng(2);
        let p = generate_prime(96, &mut r);
        let ctx = MontgomeryCtx::new(&p);
        let a = BigUint::from_u64(7);
        let p_minus_1 = p.sub(&BigUint::one());
        assert_eq!(ctx.modpow(&a, &p_minus_1), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = MontgomeryCtx::new(&BigUint::from_u64(100));
    }

    #[test]
    fn window_matches_binary_modpow() {
        let mut r = rng(4);
        let p = generate_prime(128, &mut r);
        let q = generate_prime(128, &mut r);
        let n = p.mul(&q);
        let ctx = MontgomeryCtx::new(&n);
        for trial in 0..10 {
            let base = random_bits(256, &mut r);
            // Cover both the delegating (short) and windowed (long) paths.
            let exp = random_bits(if trial % 2 == 0 { 48 } else { 250 }, &mut r);
            assert_eq!(
                ctx.modpow_window(&base, &exp),
                base.modpow(&exp, &n),
                "trial {trial}"
            );
        }
        assert_eq!(
            ctx.modpow_window(&BigUint::from_u64(5), &BigUint::zero()),
            BigUint::one()
        );
    }

    #[test]
    fn pow_mont_stays_in_montgomery_form() {
        let mut r = rng(5);
        let p = generate_prime(96, &mut r);
        let ctx = MontgomeryCtx::new(&p);
        let base = random_bits(90, &mut r);
        let exp = random_bits(80, &mut r);
        let base_m = ctx.to_mont(&base);
        let out = ctx.decode_mont(&ctx.pow_mont(&base_m, &exp));
        assert_eq!(out, base.modpow(&exp, &p));
    }

    #[test]
    fn many_random_cross_checks() {
        let mut r = rng(3);
        for trial in 0..20 {
            // Random odd modulus of varying width.
            let bits = 65 + (trial * 13) % 190;
            let mut n = random_bits(bits, &mut r);
            n.set_bit(0); // force odd
            n.set_bit(bits - 1);
            if n.is_one() {
                continue;
            }
            let ctx = MontgomeryCtx::new(&n);
            let base = random_bits(bits + 10, &mut r);
            let exp = random_bits(64, &mut r);
            assert_eq!(
                ctx.modpow(&base, &exp),
                base.modpow(&exp, &n),
                "trial {trial} bits {bits}"
            );
        }
    }
}
