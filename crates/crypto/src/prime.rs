//! Primality testing and prime generation for RSA key material.

use idpa_desim::rng::Xoshiro256StarStar;

use crate::bigint::BigUint;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// At 32 rounds the error probability is below 4^-32 ≈ 5·10^-20 for a
/// random candidate — far beyond what the simulated payment system needs.
#[must_use]
pub fn is_probable_prime(n: &BigUint, rounds: u32, rng: &mut Xoshiro256StarStar) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n.eq_u64(2) {
        return true;
    }
    if !n.is_odd() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        if n.cmp_ref(&p_big) == std::cmp::Ordering::Equal {
            return true;
        }
        if n.rem(&p_big).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);

    'witness: for _ in 0..rounds {
        let a = random_below(&n_minus_1, rng); // a ∈ [0, n-2]
        let a = a.add(&one); // a ∈ [1, n-1]
        if a.is_one() || a.cmp_ref(&n_minus_1) == std::cmp::Ordering::Equal {
            continue;
        }
        let mut x = a.modpow(&d, n);
        if x.is_one() || x.cmp_ref(&n_minus_1) == std::cmp::Ordering::Equal {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mulmod(&x, n);
            if x.cmp_ref(&n_minus_1) == std::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Number of trailing zero bits (input must be non-zero).
fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut i = 0;
    while !n.bit(i) {
        i += 1;
    }
    i
}

/// Uniform random value in `[0, bound)`; `bound` must be non-zero.
/// Rejection sampling over the minimal bit width.
pub fn random_below(bound: &BigUint, rng: &mut Xoshiro256StarStar) -> BigUint {
    assert!(!bound.is_zero(), "random_below of zero bound");
    let bits = bound.bits();
    loop {
        let candidate = random_bits(bits, rng);
        if candidate.cmp_ref(bound) == std::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Uniform random integer with at most `bits` bits.
#[must_use]
pub fn random_bits(bits: usize, rng: &mut Xoshiro256StarStar) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let n_bytes = bits.div_ceil(8);
    let mut bytes = vec![0u8; n_bytes];
    for chunk in bytes.chunks_mut(8) {
        let r = rng.next().to_be_bytes();
        let len = chunk.len();
        chunk.copy_from_slice(&r[..len]);
    }
    // Mask excess bits in the leading byte.
    let excess = n_bytes * 8 - bits;
    bytes[0] &= 0xffu8 >> excess;
    BigUint::from_bytes_be(&bytes)
}

/// Generates a random probable prime of exactly `bits` bits (top bit set).
///
/// The top **two** bits are set so that the product of two such primes has
/// exactly `2·bits` bits, giving RSA moduli of predictable size.
#[must_use]
pub fn generate_prime(bits: usize, rng: &mut Xoshiro256StarStar) -> BigUint {
    assert!(bits >= 16, "prime size too small to be meaningful: {bits}");
    loop {
        let mut candidate = random_bits(bits, rng);
        candidate.set_bit(bits - 1);
        candidate.set_bit(bits - 2);
        if !candidate.is_odd() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(&candidate, 32, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn small_primes_recognised() {
        let mut r = rng(1);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 211, 223, 65537] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng(2);
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 221, 65535, 65537 * 3] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729, 2465: Fermat pseudoprimes to many bases, but
        // Miller-Rabin must reject them.
        let mut r = rng(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^89 - 1 is a Mersenne prime.
        let mut p = BigUint::zero();
        p.set_bit(89);
        let p = p.sub(&BigUint::one());
        assert!(is_probable_prime(&p, 16, &mut rng(4)));
    }

    #[test]
    fn known_large_composite_rejected() {
        // 2^67 - 1 = 193707721 × 761838257287 (the famous Cole factorisation).
        let mut c = BigUint::zero();
        c.set_bit(67);
        let c = c.sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 16, &mut rng(5)));
    }

    #[test]
    fn random_below_stays_in_range() {
        let mut r = rng(6);
        let bound = BigUint::from_u64(1000);
        for _ in 0..1000 {
            let x = random_below(&bound, &mut r);
            assert!(x.cmp_ref(&bound) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng(7);
        for bits in [1usize, 7, 8, 9, 64, 65, 100] {
            for _ in 0..50 {
                assert!(random_bits(bits, &mut r).bits() <= bits, "width {bits}");
            }
        }
    }

    #[test]
    fn generated_prime_has_exact_size() {
        let mut r = rng(8);
        let p = generate_prime(96, &mut r);
        assert_eq!(p.bits(), 96);
        assert!(p.is_odd());
        assert!(p.bit(94), "second-highest bit set");
    }

    #[test]
    fn generated_primes_differ() {
        let mut r = rng(9);
        let p = generate_prime(64, &mut r);
        let q = generate_prime(64, &mut r);
        assert_ne!(p, q);
    }

    #[test]
    fn product_of_generated_primes_has_double_bits() {
        let mut r = rng(10);
        let p = generate_prime(80, &mut r);
        let q = generate_prime(80, &mut r);
        assert_eq!(p.mul(&q).bits(), 160);
    }
}
