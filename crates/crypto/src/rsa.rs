//! Textbook RSA key generation, signing and verification.
//!
//! The payment system signs *hashes* of token serials (full-domain-hash
//! style would require a hash into Z_n; for the simulated bank, signing the
//! SHA-256 digest interpreted as an integer is sufficient — the security
//! arguments the paper needs are unlinkability and unforgeability at the
//! protocol level, not modern EUF-CMA bounds).

use std::sync::OnceLock;

use idpa_desim::rng::Xoshiro256StarStar;

use crate::bigint::BigUint;
use crate::montgomery::MontgomeryCtx;
use crate::prime::generate_prime;
use crate::sha256::Sha256;

/// An RSA public key `(n, e)`.
///
/// Carries a lazily built, cached [`MontgomeryCtx`] over `n` so that every
/// repeated same-modulus operation — the bank verifying thousands of token
/// signatures, blinding factors raised to `e` — shares one context instead
/// of rebuilding `R^2 mod n` per call.
#[derive(Debug, Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    mont: OnceLock<MontgomeryCtx>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The cached context is derived from n; key identity is (n, e).
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl RsaPublicKey {
    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    #[must_use]
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// The shared Montgomery context over `n`, built on first use.
    #[must_use]
    pub fn mont(&self) -> &MontgomeryCtx {
        self.mont.get_or_init(|| MontgomeryCtx::new(&self.n))
    }

    /// Raw RSA verification primitive: `sig^e mod n`.
    #[must_use]
    pub fn raw_verify(&self, sig: &BigUint) -> BigUint {
        self.mont().modpow(sig, &self.e)
    }

    /// Verifies a signature over `message` produced by
    /// [`RsaKeyPair::sign_message`].
    #[must_use]
    pub fn verify_message(&self, message: &[u8], sig: &BigUint) -> bool {
        let digest = BigUint::from_bytes_be(&Sha256::digest(message)).rem(&self.n);
        self.raw_verify(sig) == digest
    }
}

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

/// The conventional public exponent 65537.
#[must_use]
pub fn f4() -> BigUint {
    BigUint::from_u64(65537)
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of `modulus_bits` bits
    /// (two primes of half that size) and exponent 65537.
    ///
    /// `modulus_bits` must be even and at least 128. Simulation-scale keys
    /// (512–1024 bits) generate quickly; nothing here is hardened for real
    /// deployment.
    #[must_use]
    pub fn generate(modulus_bits: usize, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(
            modulus_bits >= 128 && modulus_bits.is_multiple_of(2),
            "modulus_bits must be even and >= 128, got {modulus_bits}"
        );
        let e = f4();
        let one = BigUint::one();
        loop {
            let p = generate_prime(modulus_bits / 2, rng);
            let q = generate_prime(modulus_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&one).mul(&q.sub(&one));
            // e must be invertible mod phi.
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let public = RsaPublicKey {
                n,
                e,
                mont: OnceLock::new(),
            };
            // Warm the shared context at creation so the first signature
            // does not pay the one-time R^2 setup.
            let _ = public.mont();
            return RsaKeyPair { public, d };
        }
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw RSA signing primitive: `m^d mod n` (Montgomery fast path with
    /// fixed-window exponentiation — `d` is full modulus size and dense).
    #[must_use]
    pub fn raw_sign(&self, m: &BigUint) -> BigUint {
        self.public.mont().modpow_window(m, &self.d)
    }

    /// Signs SHA-256(message) interpreted as an integer mod n.
    #[must_use]
    pub fn sign_message(&self, message: &[u8]) -> BigUint {
        let digest = BigUint::from_bytes_be(&Sha256::digest(message)).rem(self.public.modulus());
        self.raw_sign(&digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn test_keys(seed: u64) -> RsaKeyPair {
        // 256-bit keys keep the test suite fast; the math is size-agnostic.
        RsaKeyPair::generate(256, &mut rng(seed))
    }

    #[test]
    fn modulus_has_requested_size() {
        let kp = test_keys(1);
        assert_eq!(kp.public().modulus().bits(), 256);
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = test_keys(2);
        let sig = kp.sign_message(b"pay the forwarder 50 units");
        assert!(kp
            .public()
            .verify_message(b"pay the forwarder 50 units", &sig));
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let kp = test_keys(3);
        let sig = kp.sign_message(b"original");
        assert!(!kp.public().verify_message(b"tampered", &sig));
    }

    #[test]
    fn verification_rejects_wrong_key() {
        let kp1 = test_keys(4);
        let kp2 = test_keys(5);
        let sig = kp1.sign_message(b"msg");
        assert!(!kp2.public().verify_message(b"msg", &sig));
    }

    #[test]
    fn raw_primitives_invert() {
        let kp = test_keys(6);
        let m = BigUint::from_u64(123_456_789);
        let sig = kp.raw_sign(&m);
        assert_eq!(kp.public().raw_verify(&sig), m);
    }

    #[test]
    fn encryption_direction_also_inverts() {
        // RSA is a trapdoor permutation: e then d also round-trips.
        let kp = test_keys(7);
        let m = BigUint::from_u64(42);
        let c = m.modpow(kp.public().exponent(), kp.public().modulus());
        let back = kp.raw_sign(&c);
        assert_eq!(back, m);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(
            test_keys(8).public().modulus(),
            test_keys(9).public().modulus()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = test_keys(10);
        let b = test_keys(10);
        assert_eq!(a.public(), b.public());
    }
}
