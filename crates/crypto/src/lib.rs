//! # idpa-crypto — from-scratch cryptographic substrate
//!
//! The paper's §5 defers "the payment infrastructure and the various
//! cryptographic operations involved in route formation and verification"
//! to its technical report, which is not publicly available. The
//! reproduction therefore implements the canonical 2007-era design those
//! operations require (the substitution is documented in `DESIGN.md` §5):
//!
//! * **Chaum blind signatures over RSA** — the bank signs withdrawal tokens
//!   without seeing their serial numbers, which is what lets the initiator
//!   pay forwarders without the bank linking payments to connections;
//! * **SHA-256 / HMAC-SHA-256** — token serials, receipt digests, and the
//!   path-validation MACs the initiator checks when it "recreates the path
//!   and validates it" from the confirmations on the reverse path;
//! * **ChaCha20** — layered sealing of contract and confirmation records so
//!   intermediate forwarders do not learn the initiator's identity.
//!
//! Everything is built here from first principles on an arbitrary-precision
//! integer ([`bigint::BigUint`]): Miller–Rabin primality, RSA key
//! generation, blinding/unblinding. No external crypto crates.
//!
//! **This code is for simulation and study, not production use**: it makes
//! no attempt at constant-time execution or side-channel hygiene.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod batch;
pub mod bigint;
pub mod blind;
pub mod chacha20;
pub mod hmac;
pub mod montgomery;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use batch::{batch_verify, BatchOutcome};
pub use bigint::BigUint;
pub use blind::BlindingFactor;
pub use chacha20::ChaCha20;
pub use montgomery::MontgomeryCtx;
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use sha256::Sha256;
