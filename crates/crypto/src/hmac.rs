//! HMAC-SHA-256 (RFC 2104), for receipt digests and the path-validation
//! MACs an initiator checks when reconstructing a forwarding path.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than one block are hashed first.
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two MACs (length then bytes, XOR-folded).
#[must_use]
pub fn verify_hmac(key: &[u8], message: &[u8], mac: &[u8]) -> bool {
    let expect = hmac_sha256(key, message);
    if mac.len() != expect.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(mac) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_correct_mac() {
        let mac = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &mac));
    }

    #[test]
    fn verify_rejects_wrong_mac() {
        let mut mac = hmac_sha256(b"k", b"m");
        mac[0] ^= 1;
        assert!(!verify_hmac(b"k", b"m", &mac));
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let mac = hmac_sha256(b"k", b"m");
        assert!(!verify_hmac(b"k", b"m", &mac[..31]));
    }

    #[test]
    fn different_keys_give_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
