//! Property-based tests of the cryptographic substrate.

use idpa_crypto::bigint::BigUint;
use idpa_crypto::montgomery::MontgomeryCtx;
use idpa_crypto::chacha20::ChaCha20;
use idpa_crypto::hmac::{hmac_sha256, verify_hmac};
use idpa_crypto::sha256::Sha256;
use proptest::prelude::*;

fn from_words(words: &[u64]) -> BigUint {
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
    BigUint::from_bytes_be(&bytes)
}

proptest! {
    /// Exponent laws: a^(x+y) = a^x · a^y (mod m).
    #[test]
    fn modpow_exponent_addition(a in 2u64.., x in 0u64..2000, y in 0u64..2000, m in 2u64..) {
        let a = BigUint::from_u64(a);
        let m = BigUint::from_u64(m);
        let lhs = a.modpow(&BigUint::from_u64(x + y), &m);
        let rhs = a
            .modpow(&BigUint::from_u64(x), &m)
            .mulmod(&a.modpow(&BigUint::from_u64(y), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    /// (a·b)^e = a^e · b^e (mod m) — the homomorphism blind signatures
    /// rely on.
    #[test]
    fn modpow_is_multiplicative(a in 1u64.., b in 1u64.., e in 0u64..500, m in 2u64..) {
        let (a, b, m) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(m));
        let e = BigUint::from_u64(e);
        let lhs = a.mulmod(&b, &m).modpow(&e, &m);
        let rhs = a.modpow(&e, &m).mulmod(&b.modpow(&e, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    /// gcd divides both arguments and is the largest such (spot-check via
    /// the gcd identity gcd(a,b)*lcm-free check: gcd divides both and
    /// gcd(a/g, b/g) == 1).
    #[test]
    fn gcd_properties(a_w in prop::collection::vec(any::<u64>(), 1..3),
                      b_w in prop::collection::vec(any::<u64>(), 1..3)) {
        let a = from_words(&a_w);
        let b = from_words(&b_w);
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
        let (aq, _) = a.divrem(&g);
        let (bq, _) = b.divrem(&g);
        prop_assert!(aq.gcd(&bq).is_one());
    }

    /// SHA-256 digests are stable and sensitive to any single-bit flip.
    #[test]
    fn sha256_bit_sensitivity(data in prop::collection::vec(any::<u8>(), 1..200),
                              bit in 0usize..8, idx_seed in any::<usize>()) {
        let d1 = Sha256::digest(&data);
        let mut mutated = data.clone();
        let idx = idx_seed % mutated.len();
        mutated[idx] ^= 1 << bit;
        let d2 = Sha256::digest(&mutated);
        prop_assert_ne!(d1, d2);
        prop_assert_eq!(d1, Sha256::digest(&data), "deterministic");
    }

    /// Incremental hashing equals one-shot hashing at any split point.
    #[test]
    fn sha256_incremental_any_split(data in prop::collection::vec(any::<u8>(), 0..300),
                                    split_seed in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split_seed % (data.len() + 1) };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// HMAC verifies its own output and rejects any MAC bit flip.
    #[test]
    fn hmac_round_trip_and_rejection(key in prop::collection::vec(any::<u8>(), 0..100),
                                     msg in prop::collection::vec(any::<u8>(), 0..100),
                                     flip in 0usize..256) {
        let mac = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac(&key, &msg, &mac));
        let mut bad = mac;
        bad[flip / 8] ^= 1 << (flip % 8);
        prop_assert!(!verify_hmac(&key, &msg, &bad));
    }

    /// Montgomery modpow agrees with plain modpow on arbitrary odd moduli.
    #[test]
    fn montgomery_agrees_with_plain(base_w in prop::collection::vec(any::<u64>(), 1..4),
                                    exp in any::<u64>(),
                                    modulus_w in prop::collection::vec(any::<u64>(), 1..4)) {
        let base = from_words(&base_w);
        let mut modulus = from_words(&modulus_w);
        modulus.set_bit(0); // force odd
        prop_assume!(!modulus.is_one());
        let exp = BigUint::from_u64(exp);
        let ctx = MontgomeryCtx::new(&modulus);
        prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow(&exp, &modulus));
    }

    /// ChaCha20 decryption inverts encryption for any key/nonce/payload.
    #[test]
    fn chacha_round_trip(key in prop::collection::vec(any::<u8>(), 32..=32),
                         nonce in prop::collection::vec(any::<u8>(), 12..=12),
                         msg in prop::collection::vec(any::<u8>(), 0..500)) {
        let key: [u8; 32] = key.try_into().unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let ct = ChaCha20::encrypt(&key, &nonce, &msg);
        prop_assert_eq!(ct.len(), msg.len());
        prop_assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), msg);
    }
}
