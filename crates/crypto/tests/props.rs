//! Property-based tests of the cryptographic substrate.
//!
//! Randomized with a fixed-seed Xoshiro256** stream (in-tree, offline)
//! instead of an external property-testing framework: every property runs
//! a few hundred generated cases and is exactly reproducible.

use idpa_crypto::bigint::BigUint;
use idpa_crypto::chacha20::ChaCha20;
use idpa_crypto::hmac::{hmac_sha256, verify_hmac};
use idpa_crypto::sha256::Sha256;
use idpa_desim::rng::Xoshiro256StarStar;

const CASES: usize = 256;

fn rng(seed: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(seed)
}

fn random_bytes(rng: &mut Xoshiro256StarStar, len: usize) -> Vec<u8> {
    (0..len).map(|_| (rng.next() & 0xff) as u8).collect()
}

fn random_len(rng: &mut Xoshiro256StarStar, lo: usize, hi: usize) -> usize {
    lo + (rng.next() as usize) % (hi - lo)
}

fn from_words(words: &[u64]) -> BigUint {
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
    BigUint::from_bytes_be(&bytes)
}

fn random_biguint(rng: &mut Xoshiro256StarStar, max_words: usize) -> BigUint {
    let n = 1 + (rng.next() as usize) % max_words;
    let words: Vec<u64> = (0..n).map(|_| rng.next()).collect();
    from_words(&words)
}

/// Exponent laws: a^(x+y) = a^x · a^y (mod m).
#[test]
fn modpow_exponent_addition() {
    let mut r = rng(0x1001);
    for _ in 0..CASES {
        let a = BigUint::from_u64(2 + r.next() % (u64::MAX - 2));
        let m = BigUint::from_u64(2 + r.next() % (u64::MAX - 2));
        let x = r.next() % 2000;
        let y = r.next() % 2000;
        let lhs = a.modpow(&BigUint::from_u64(x + y), &m);
        let rhs = a
            .modpow(&BigUint::from_u64(x), &m)
            .mulmod(&a.modpow(&BigUint::from_u64(y), &m), &m);
        assert_eq!(lhs, rhs, "a^(x+y) != a^x a^y for x={x} y={y}");
    }
}

/// (a·b)^e = a^e · b^e (mod m) — the homomorphism blind signatures rely on.
#[test]
fn modpow_is_multiplicative() {
    let mut r = rng(0x1002);
    for _ in 0..CASES {
        let a = BigUint::from_u64(1 + r.next() % (u64::MAX - 1));
        let b = BigUint::from_u64(1 + r.next() % (u64::MAX - 1));
        let m = BigUint::from_u64(2 + r.next() % (u64::MAX - 2));
        let e = BigUint::from_u64(r.next() % 500);
        let lhs = a.mulmod(&b, &m).modpow(&e, &m);
        let rhs = a.modpow(&e, &m).mulmod(&b.modpow(&e, &m), &m);
        assert_eq!(lhs, rhs);
    }
}

/// gcd divides both arguments and gcd(a/g, b/g) == 1.
#[test]
fn gcd_properties() {
    let mut r = rng(0x1003);
    let mut ran = 0;
    while ran < CASES {
        let a = random_biguint(&mut r, 2);
        let b = random_biguint(&mut r, 2);
        if a.is_zero() || b.is_zero() {
            continue;
        }
        ran += 1;
        let g = a.gcd(&b);
        assert!(!g.is_zero());
        assert!(a.rem(&g).is_zero());
        assert!(b.rem(&g).is_zero());
        let (aq, _) = a.divrem(&g);
        let (bq, _) = b.divrem(&g);
        assert!(aq.gcd(&bq).is_one());
    }
}

/// SHA-256 digests are stable and sensitive to any single-bit flip.
#[test]
fn sha256_bit_sensitivity() {
    let mut r = rng(0x1004);
    for _ in 0..CASES {
        let len = random_len(&mut r, 1, 200);
        let data = random_bytes(&mut r, len);
        let d1 = Sha256::digest(&data);
        let mut mutated = data.clone();
        let idx = (r.next() as usize) % mutated.len();
        let bit = (r.next() % 8) as u8;
        mutated[idx] ^= 1 << bit;
        let d2 = Sha256::digest(&mutated);
        assert_ne!(d1, d2);
        assert_eq!(d1, Sha256::digest(&data), "deterministic");
    }
}

/// Incremental hashing equals one-shot hashing at any split point.
#[test]
fn sha256_incremental_any_split() {
    let mut r = rng(0x1005);
    for _ in 0..CASES {
        let len = random_len(&mut r, 0, 300);
        let data = random_bytes(&mut r, len);
        let split = if data.is_empty() {
            0
        } else {
            (r.next() as usize) % (data.len() + 1)
        };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}

/// HMAC verifies its own output and rejects any MAC bit flip.
#[test]
fn hmac_round_trip_and_rejection() {
    let mut r = rng(0x1006);
    for _ in 0..CASES {
        let key_len = random_len(&mut r, 0, 100);
        let key = random_bytes(&mut r, key_len);
        let msg_len = random_len(&mut r, 0, 100);
        let msg = random_bytes(&mut r, msg_len);
        let mac = hmac_sha256(&key, &msg);
        assert!(verify_hmac(&key, &msg, &mac));
        let flip = (r.next() % 256) as usize;
        let mut bad = mac;
        bad[flip / 8] ^= 1 << (flip % 8);
        assert!(!verify_hmac(&key, &msg, &bad));
    }
}

/// Montgomery modpow agrees with plain modpow on arbitrary odd moduli.
#[test]
fn montgomery_agrees_with_plain() {
    use idpa_crypto::montgomery::MontgomeryCtx;
    let mut r = rng(0x1007);
    let mut ran = 0;
    while ran < CASES {
        let base = random_biguint(&mut r, 3);
        let mut modulus = random_biguint(&mut r, 3);
        modulus.set_bit(0); // force odd
        if modulus.is_one() {
            continue;
        }
        ran += 1;
        let exp = BigUint::from_u64(r.next());
        let ctx = MontgomeryCtx::new(&modulus);
        assert_eq!(ctx.modpow(&base, &exp), base.modpow(&exp, &modulus));
    }
}

/// ChaCha20 decryption inverts encryption for any key/nonce/payload.
#[test]
fn chacha_round_trip() {
    let mut r = rng(0x1008);
    for _ in 0..CASES {
        let key: [u8; 32] = random_bytes(&mut r, 32).try_into().unwrap();
        let nonce: [u8; 12] = random_bytes(&mut r, 12).try_into().unwrap();
        let msg_len = random_len(&mut r, 0, 500);
        let msg = random_bytes(&mut r, msg_len);
        let ct = ChaCha20::encrypt(&key, &nonce, &msg);
        assert_eq!(ct.len(), msg.len());
        assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), msg);
    }
}

/// Batch verify ≡ individual up-to-sign verify: over random batches under
/// a pool of RSA keys, `batch_verify` accepts exactly when every item
/// satisfies `sig^e ≡ ±m (mod n)` — the relation the squared combined
/// equation decides (strict verification is a caller concern; see the
/// module docs on Boyd–Pavlovski). Negated signatures (`sig → n - sig`)
/// are accepted by contract; additive corruptions — signature or message,
/// including the adversarial single-forgery-in-k case and mixed batches
/// where negations ride along with real forgeries — are listed exactly.
#[test]
fn batch_verify_equals_individual_up_to_sign_verify() {
    use idpa_crypto::batch::{batch_verify, BatchOutcome};
    use idpa_crypto::rsa::RsaKeyPair;

    // A small key pool keeps 256 cases fast; the property is per-batch.
    let keys: Vec<RsaKeyPair> = (0..4)
        .map(|i| RsaKeyPair::generate(256, &mut rng(0x3000 + i)))
        .collect();

    let mut gen = rng(0x3001);
    for case in 0..CASES {
        let mut r = rng(gen.next());
        let kp = &keys[(r.next() % keys.len() as u64) as usize];
        let n = kp.public().modulus().clone();
        let k = 1 + (r.next() % 12) as usize;

        let mut items: Vec<(BigUint, BigUint)> = (0..k)
            .map(|i| {
                let m = BigUint::from_bytes_be(&Sha256::digest(
                    format!("case-{case}-tok-{i}").as_bytes(),
                ))
                .rem(&n);
                (kp.raw_sign(&m), m)
            })
            .collect();

        // 0 = clean batch; 1 = exactly one corruption; 2 = random
        // corruption count (possibly several, possibly whole batch).
        let n_corrupt = match r.next() % 3 {
            0 => 0,
            1 => 1,
            _ => 1 + (r.next() as usize % k),
        };
        let mut victims: Vec<usize> = (0..k).collect();
        // Partial shuffle picks n_corrupt distinct victim indices.
        for i in 0..n_corrupt {
            let j = i + (r.next() as usize) % (k - i);
            victims.swap(i, j);
        }
        victims.truncate(n_corrupt);
        victims.sort_unstable();
        // Each victim gets an additive forgery (invalid even up to sign)
        // or a negation (invalid strictly, valid up to sign).
        let mut forged: Vec<usize> = Vec::new();
        for &i in &victims {
            match r.next() % 3 {
                0 => {
                    items[i].0 = items[i].0.add(&BigUint::one()).rem(&n);
                    forged.push(i);
                }
                1 => {
                    items[i].1 = items[i].1.add(&BigUint::one()).rem(&n);
                    forged.push(i);
                }
                _ => items[i].0 = n.sub(&items[i].0), // negation
            }
        }

        let up_to_sign_bad: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (sig, m))| {
                let v = kp.public().raw_verify(sig);
                let mr = m.rem(&n);
                v != mr && v != n.sub(&mr).rem(&n)
            })
            .map(|(i, _)| i)
            .collect();
        // Corrupting by +1 can never produce another valid pair by
        // accident at these sizes, but derive the oracle from the
        // individual primitive anyway — that is the equivalence claim.
        assert_eq!(up_to_sign_bad, forged, "case {case}: oracle setup");

        let outcome = batch_verify(kp.public(), &items, |_| r.next());
        match (&outcome, up_to_sign_bad.is_empty()) {
            (BatchOutcome::AllValid, true) => {}
            (BatchOutcome::Rejected(bad), false) => {
                assert_eq!(bad, &up_to_sign_bad, "case {case}: isolated set");
            }
            _ => panic!("case {case}: batch/individual verdicts diverge: {outcome:?}"),
        }
        if forged.len() == 1 {
            assert_eq!(
                outcome,
                BatchOutcome::Rejected(forged.clone()),
                "case {case}: single forgery in a batch of {k} must be isolated"
            );
        }
    }
}
