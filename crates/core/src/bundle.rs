//! Bookkeeping for one bundle of recurring connections (§2.1–2.2).
//!
//! The paper's central bookkeeping object is the set
//! `π = {π^1, …, π^k}` of recurring connections between an initiator and a
//! responder: the forwarder set is the union of forwarders over all
//! connections, each forwarder's benefit is `m·P_f + P_r/‖π‖` for its `m`
//! forwarding instances, and the system objective is to keep `‖π‖` small.

use std::collections::BTreeMap;

use idpa_overlay::NodeId;

/// Identifier of a connection bundle (one (I, R) pair's recurring traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BundleId(pub u64);

/// Per-forwarder tallies within one bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ForwarderTally {
    /// Forwarding instances `m` (hops served across all connections).
    pub instances: u64,
    /// Sum of transmission costs incurred.
    pub transmission_cost: f64,
    /// Whether the participation cost was charged.
    pub participated: bool,
}

/// Accounting for one bundle: connections recorded hop by hop, payoffs
/// computed at completion.
#[derive(Debug, Clone, Default)]
pub struct BundleAccounting {
    tallies: BTreeMap<NodeId, ForwarderTally>,
    connections: u32,
    total_hops: u64,
}

impl BundleAccounting {
    /// Fresh accounting with no connections.
    #[must_use]
    pub fn new() -> Self {
        BundleAccounting::default()
    }

    /// Records one completed connection path `I → f_1 → … → f_n → R`.
    /// `forwarders` is the intermediate hop list (no endpoints);
    /// `hop_costs[i]` is the transmission cost forwarder `i` paid to reach
    /// its successor.
    pub fn record_connection(&mut self, forwarders: &[NodeId], hop_costs: &[f64]) {
        assert_eq!(
            forwarders.len(),
            hop_costs.len(),
            "one transmission cost per forwarder"
        );
        self.connections += 1;
        self.total_hops += forwarders.len() as u64;
        for (&f, &cost) in forwarders.iter().zip(hop_costs) {
            let t = self.tallies.entry(f).or_default();
            t.instances += 1;
            t.transmission_cost += cost;
            t.participated = true;
        }
    }

    /// Number of connections recorded so far (`k`).
    #[must_use]
    pub fn connections(&self) -> u32 {
        self.connections
    }

    /// The forwarder set size `‖π‖`: distinct forwarders across all
    /// connections of the bundle.
    #[must_use]
    pub fn forwarder_set_size(&self) -> usize {
        self.tallies.len()
    }

    /// The distinct forwarders.
    #[must_use]
    pub fn forwarder_set(&self) -> Vec<NodeId> {
        self.tallies.keys().copied().collect()
    }

    /// Average path length `L` over the recorded connections (forwarder
    /// hops per connection).
    #[must_use]
    pub fn average_path_length(&self) -> f64 {
        if self.connections == 0 {
            0.0
        } else {
            self.total_hops as f64 / f64::from(self.connections)
        }
    }

    /// Forwarding instances `m` of a node (0 if it never forwarded).
    #[must_use]
    pub fn instances(&self, node: NodeId) -> u64 {
        self.tallies.get(&node).map_or(0, |t| t.instances)
    }

    /// Final net payoffs at bundle completion: for each forwarder,
    /// `m·P_f + P_r/‖π‖ − C^t_total − C^p` (participation cost charged once
    /// per bundle, per §2.4.1's "one time cost").
    #[must_use]
    pub fn payoffs(&self, pf: f64, pr: f64, participation_cost: f64) -> Vec<(NodeId, f64)> {
        let set = self.forwarder_set_size();
        if set == 0 {
            return Vec::new();
        }
        let routing_share = pr / set as f64;
        self.tallies
            .iter()
            .map(|(&node, t)| {
                let gross = t.instances as f64 * pf + routing_share;
                (node, gross - t.transmission_cost - participation_cost)
            })
            .collect()
    }

    /// Gross benefit (no costs) of a forwarder — the paper's
    /// "`m·P_f + P_r/‖π‖`".
    #[must_use]
    pub fn gross_benefit(&self, node: NodeId, pf: f64, pr: f64) -> f64 {
        let set = self.forwarder_set_size();
        if set == 0 || !self.tallies.contains_key(&node) {
            return 0.0;
        }
        self.instances(node) as f64 * pf + pr / set as f64
    }

    /// Snapshot export: the per-forwarder tallies (already sorted — the
    /// map is a `BTreeMap`) plus `(connections, total_hops)`.
    #[must_use]
    pub fn snapshot_state(&self) -> (Vec<(NodeId, ForwarderTally)>, u32, u64) {
        let tallies: Vec<(NodeId, ForwarderTally)> =
            self.tallies.iter().map(|(&n, &t)| (n, t)).collect();
        (tallies, self.connections, self.total_hops)
    }

    /// Rebuilds accounting from a [`BundleAccounting::snapshot_state`]
    /// export.
    #[must_use]
    pub fn from_snapshot(
        tallies: Vec<(NodeId, ForwarderTally)>,
        connections: u32,
        total_hops: u64,
    ) -> Self {
        BundleAccounting {
            tallies: tallies.into_iter().collect(),
            connections,
            total_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_bundle() {
        let b = BundleAccounting::new();
        assert_eq!(b.forwarder_set_size(), 0);
        assert_eq!(b.average_path_length(), 0.0);
        assert!(b.payoffs(50.0, 100.0, 5.0).is_empty());
    }

    #[test]
    fn forwarder_set_is_union_over_connections() {
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1), n(2)], &[0.0, 0.0]);
        b.record_connection(&[n(2), n(3)], &[0.0, 0.0]);
        assert_eq!(b.forwarder_set_size(), 3);
        assert_eq!(b.forwarder_set(), vec![n(1), n(2), n(3)]);
        assert_eq!(b.connections(), 2);
    }

    #[test]
    fn instances_count_repeat_participation() {
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1), n(2)], &[0.0, 0.0]);
        b.record_connection(&[n(1)], &[0.0]);
        assert_eq!(b.instances(n(1)), 2);
        assert_eq!(b.instances(n(2)), 1);
        assert_eq!(b.instances(n(9)), 0);
    }

    #[test]
    fn node_twice_on_same_path_counts_twice() {
        // The paper explicitly allows a node to occupy two positions on the
        // same path.
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1), n(2), n(1)], &[0.0, 0.0, 0.0]);
        assert_eq!(b.instances(n(1)), 2);
        assert_eq!(b.forwarder_set_size(), 2);
    }

    #[test]
    fn average_path_length() {
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1), n(2)], &[0.0, 0.0]);
        b.record_connection(&[n(3), n(4), n(5), n(6)], &[0.0; 4]);
        assert_eq!(b.average_path_length(), 3.0);
    }

    #[test]
    fn payoff_formula_matches_paper() {
        // pf = 50, pr = 100, two forwarders => routing share 50 each.
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1), n(2)], &[2.0, 3.0]);
        b.record_connection(&[n(1)], &[2.0]);
        let payoffs: BTreeMap<NodeId, f64> = b.payoffs(50.0, 100.0, 5.0).into_iter().collect();
        // n1: 2*50 + 50 - 4 - 5 = 141 ; n2: 1*50 + 50 - 3 - 5 = 92
        assert!((payoffs[&n(1)] - 141.0).abs() < 1e-12);
        assert!((payoffs[&n(2)] - 92.0).abs() < 1e-12);
    }

    #[test]
    fn gross_benefit_shrinks_with_forwarder_set() {
        // Same instances; a bigger forwarder set dilutes the routing share
        // (the Figure 1 vs Figure 2 comparison).
        let mut small = BundleAccounting::new();
        small.record_connection(&[n(1), n(2), n(3)], &[0.0; 3]);
        small.record_connection(&[n(1), n(2), n(3)], &[0.0; 3]);

        let mut large = BundleAccounting::new();
        large.record_connection(&[n(1), n(2), n(3)], &[0.0; 3]);
        large.record_connection(&[n(1), n(4), n(5)], &[0.0; 3]);

        let pf = 50.0;
        let pr = 100.0;
        assert!(small.gross_benefit(n(1), pf, pr) > large.gross_benefit(n(1), pf, pr));
        // n2 also loses its second forwarding instance in the large case.
        assert!(small.gross_benefit(n(2), pf, pr) > large.gross_benefit(n(2), pf, pr));
    }

    #[test]
    #[should_panic(expected = "one transmission cost per forwarder")]
    fn mismatched_costs_rejected() {
        let mut b = BundleAccounting::new();
        b.record_connection(&[n(1)], &[0.0, 0.0]);
    }
}
