//! Anonymity and efficiency metrics (§2.1, §3).
//!
//! * Path quality `Q(π) = L / ‖π‖` — average path length normalised by the
//!   forwarder-set size; the system objective is to maximise it by
//!   minimising `‖π‖` (§2.1).
//! * Routing efficiency — "ratio of average payoff and average number of
//!   forwarders", the Table 2 metric.
//! * Entropy-based anonymity degree — the standard Serjantov/Diaz measure
//!   used to report the quality of the anonymity set.
//! * Reformation tracking — the `E[X]` estimator of Prop. 1: the fraction
//!   of a new connection's edges not seen on any earlier connection of the
//!   bundle.

use std::collections::HashSet;

use idpa_overlay::NodeId;

/// `Q(π) = L / ‖π‖`. Zero when the forwarder set is empty.
#[must_use]
pub fn path_quality(average_path_length: f64, forwarder_set_size: usize) -> f64 {
    if forwarder_set_size == 0 {
        0.0
    } else {
        average_path_length / forwarder_set_size as f64
    }
}

/// Routing efficiency: `avg payoff / avg #forwarders` (Table 2). Zero when
/// no forwarders.
#[must_use]
pub fn routing_efficiency(average_payoff: f64, average_forwarders: f64) -> f64 {
    if average_forwarders <= 0.0 {
        0.0
    } else {
        average_payoff / average_forwarders
    }
}

/// Shannon entropy (bits) of a discrete distribution. Zero-probability
/// entries contribute nothing; probabilities must sum to ~1.
#[must_use]
pub fn entropy_bits(probs: &[f64]) -> f64 {
    let sum: f64 = probs.iter().sum();
    debug_assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities must sum to 1, got {sum}"
    );
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.log2())
        .sum::<f64>()
}

/// Degree of anonymity `d = H(X) / log2(N)` for `N` possible senders:
/// 1 means the attacker learns nothing, 0 means fully exposed.
#[must_use]
pub fn anonymity_degree(probs: &[f64]) -> f64 {
    let n = probs.iter().filter(|&&p| p >= 0.0).count();
    if n <= 1 {
        return 0.0;
    }
    entropy_bits(probs) / (n as f64).log2()
}

/// Uniform-over-candidates anonymity degree given a candidate set of size
/// `candidates` out of `n` nodes — the form the intersection attack
/// produces.
#[must_use]
pub fn candidate_set_degree(candidates: usize, n: usize) -> f64 {
    assert!(n >= 1 && candidates <= n, "invalid candidate set");
    if n == 1 || candidates == 0 {
        return 0.0;
    }
    (candidates as f64).log2() / (n as f64).log2()
}

/// Reiter–Rubin predecessor analysis for Crowds-style forwarding (the
/// paper's substrate protocol): the probability that the node immediately
/// preceding the *first collaborator* on a path is the true initiator,
/// with `n` total jondos, `c` collaborators and forwarding probability
/// `p_f`:
///
/// `P = 1 − p_f·(n − c − 1)/n`
///
/// Initiator anonymity degrades as `c/n` grows — which is why the paper's
/// mechanism works to keep good, stable forwarders available.
#[must_use]
pub fn crowds_predecessor_probability(n: usize, c: usize, p_forward: f64) -> f64 {
    assert!(n >= 1 && c < n, "need at least one honest jondo");
    assert!((0.0..1.0).contains(&p_forward), "p_forward in [0,1)");
    1.0 - p_forward * (n - c - 1) as f64 / n as f64
}

/// Whether Crowds' *probable innocence* holds (`P ≤ 1/2`): the first
/// collaborator's predecessor is no more likely than not to be the
/// initiator.
#[must_use]
pub fn crowds_probable_innocence(n: usize, c: usize, p_forward: f64) -> bool {
    crowds_predecessor_probability(n, c, p_forward) <= 0.5
}

/// Minimum network size for probable innocence against `c` collaborators
/// at forwarding probability `p_f > 1/2`:
/// `n ≥ p_f/(p_f − 1/2) · (c + 1)`.
#[must_use]
pub fn crowds_min_network_size(c: usize, p_forward: f64) -> f64 {
    assert!(p_forward > 0.5, "probable innocence needs p_forward > 1/2");
    p_forward / (p_forward - 0.5) * (c + 1) as f64
}

/// Tracks path reformations over a bundle's connections — the empirical
/// `E[X]` of Prop. 1 (probability that an edge of the new connection is
/// *new*, i.e. absent from all earlier connections of the bundle).
#[derive(Debug, Clone, Default)]
pub struct ReformationTracker {
    seen_edges: HashSet<(NodeId, NodeId)>,
    connections: u32,
    new_edges: u64,
    total_edges: u64,
    reformed_connections: u32,
}

impl ReformationTracker {
    /// Fresh tracker.
    #[must_use]
    pub fn new() -> Self {
        ReformationTracker::default()
    }

    /// Records the edges of one completed connection; returns the number
    /// of new (never seen) edges it contributed.
    pub fn record(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        self.connections += 1;
        let mut fresh = 0;
        for &e in edges {
            self.total_edges += 1;
            if self.seen_edges.insert(e) {
                fresh += 1;
            }
        }
        self.new_edges += fresh as u64;
        // The first connection's edges are all trivially new; it is not a
        // "reformation". Later connections count as reformed if any edge
        // changed.
        if self.connections > 1 && fresh > 0 {
            self.reformed_connections += 1;
        }
        fresh
    }

    /// Empirical `E[X]`: fraction of recorded edges that were new at the
    /// time of recording, over connections after the first.
    #[must_use]
    pub fn new_edge_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            return 0.0;
        }
        self.new_edges as f64 / self.total_edges as f64
    }

    /// Fraction of post-first connections that changed at least one edge.
    #[must_use]
    pub fn reformation_rate(&self) -> f64 {
        if self.connections <= 1 {
            return 0.0;
        }
        f64::from(self.reformed_connections) / f64::from(self.connections - 1)
    }

    /// Distinct edges seen so far.
    #[must_use]
    pub fn distinct_edges(&self) -> usize {
        self.seen_edges.len()
    }

    /// Snapshot export: the seen-edge set (sorted, so the export is a pure
    /// function of the tracker's value) plus the four counters
    /// `(connections, new_edges, total_edges, reformed_connections)`.
    #[must_use]
    pub fn snapshot_state(&self) -> (Vec<(NodeId, NodeId)>, u32, u64, u64, u32) {
        let mut edges: Vec<(NodeId, NodeId)> = self.seen_edges.iter().copied().collect();
        edges.sort_unstable_by_key(|&(a, b)| (a.index(), b.index()));
        (
            edges,
            self.connections,
            self.new_edges,
            self.total_edges,
            self.reformed_connections,
        )
    }

    /// Rebuilds a tracker from a [`ReformationTracker::snapshot_state`]
    /// export.
    #[must_use]
    pub fn from_snapshot(
        edges: Vec<(NodeId, NodeId)>,
        connections: u32,
        new_edges: u64,
        total_edges: u64,
        reformed_connections: u32,
    ) -> Self {
        ReformationTracker {
            seen_edges: edges.into_iter().collect(),
            connections,
            new_edges,
            total_edges,
            reformed_connections,
        }
    }
}

/// Degradation bookkeeping under fault injection: delivery ratio, retries
/// per message, and the latency added by retry/reformation cycles.
///
/// A *message* is one scheduled transmission; each failed attempt costs a
/// retry (a fresh path formation after backoff), and a message is
/// *delivered* only when the initiator receives the confirmation. Messages
/// whose retries are exhausted — or whose pending retries fall past the
/// horizon — count against the delivery ratio.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeliveryTracker {
    scheduled: u64,
    delivered: u64,
    abandoned: u64,
    retries: u64,
    latency_sum: f64,
    latency_count: u64,
}

impl DeliveryTracker {
    /// Fresh tracker.
    #[must_use]
    pub fn new() -> Self {
        DeliveryTracker::default()
    }

    /// Registers `n` scheduled messages (the denominator of the ratio).
    pub fn record_scheduled(&mut self, n: u64) {
        self.scheduled += n;
    }

    /// Registers one retry (a failed attempt with budget remaining).
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Registers a message whose retry budget ran out.
    pub fn record_abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// Registers an end-to-end confirmed delivery. `latency` is the time
    /// from the message's original schedule to completion; it feeds the
    /// reformation-latency mean only when the message `retried`.
    pub fn record_delivered(&mut self, latency: f64, retried: bool) {
        self.delivered += 1;
        if retried {
            self.latency_sum += latency;
            self.latency_count += 1;
        }
    }

    /// Confirmed deliveries over scheduled messages (1.0 with nothing
    /// scheduled, so a fault-free run reports perfect delivery).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.scheduled == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.scheduled as f64
    }

    /// Mean retries per scheduled message.
    #[must_use]
    pub fn retries_per_message(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        self.retries as f64 / self.scheduled as f64
    }

    /// Mean schedule-to-completion latency over delivered messages that
    /// needed at least one reformation (0 when none did).
    #[must_use]
    pub fn reformation_latency(&self) -> f64 {
        if self.latency_count == 0 {
            return 0.0;
        }
        self.latency_sum / self.latency_count as f64
    }

    /// Messages that exhausted their retry budget.
    #[must_use]
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Total retries across all messages.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Confirmed deliveries.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Snapshot export: `(scheduled, delivered, abandoned, retries,
    /// latency_sum bits, latency_count)` — the latency sum travels as its
    /// bit pattern so the restored mean is bit-identical.
    #[must_use]
    pub fn snapshot_state(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.scheduled,
            self.delivered,
            self.abandoned,
            self.retries,
            self.latency_sum.to_bits(),
            self.latency_count,
        )
    }

    /// Rebuilds a tracker from a [`DeliveryTracker::snapshot_state`] export.
    #[must_use]
    pub fn from_snapshot(state: (u64, u64, u64, u64, u64, u64)) -> Self {
        DeliveryTracker {
            scheduled: state.0,
            delivered: state.1,
            abandoned: state.2,
            retries: state.3,
            latency_sum: f64::from_bits(state.4),
            latency_count: state.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: usize, b: usize) -> (NodeId, NodeId) {
        (NodeId(a), NodeId(b))
    }

    #[test]
    fn path_quality_formula() {
        assert_eq!(path_quality(4.0, 8), 0.5);
        assert_eq!(path_quality(4.0, 4), 1.0);
        assert_eq!(path_quality(4.0, 0), 0.0);
        // Smaller forwarder set at equal length => higher quality (§2.1).
        assert!(path_quality(4.0, 3) > path_quality(4.0, 8));
    }

    #[test]
    fn routing_efficiency_formula() {
        assert_eq!(routing_efficiency(600.0, 2.0), 300.0);
        assert_eq!(routing_efficiency(600.0, 0.0), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let probs = vec![0.25; 4];
        assert!((entropy_bits(&probs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy_bits(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn anonymity_degree_bounds() {
        assert!((anonymity_degree(&[0.25; 4]) - 1.0).abs() < 1e-12);
        assert_eq!(anonymity_degree(&[1.0, 0.0, 0.0, 0.0]), 0.0);
        let skewed = anonymity_degree(&[0.7, 0.1, 0.1, 0.1]);
        assert!(skewed > 0.0 && skewed < 1.0);
    }

    #[test]
    fn candidate_set_degree_behaviour() {
        assert_eq!(candidate_set_degree(40, 40), 1.0);
        assert_eq!(candidate_set_degree(1, 40), 0.0);
        assert_eq!(candidate_set_degree(0, 40), 0.0);
        assert!(candidate_set_degree(20, 40) > candidate_set_degree(5, 40));
    }

    #[test]
    fn stable_path_has_no_reformations() {
        let mut t = ReformationTracker::new();
        let path = [e(0, 1), e(1, 2), e(2, 9)];
        for _ in 0..5 {
            t.record(&path);
        }
        assert_eq!(t.reformation_rate(), 0.0);
        assert_eq!(t.distinct_edges(), 3);
        // 3 new of 15 total edges.
        assert!((t.new_edge_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn changing_paths_count_as_reformations() {
        let mut t = ReformationTracker::new();
        t.record(&[e(0, 1), e(1, 9)]);
        t.record(&[e(0, 2), e(2, 9)]); // fully new
        t.record(&[e(0, 1), e(1, 9)]); // reuses connection 1's edges
        assert_eq!(t.reformation_rate(), 0.5);
    }

    #[test]
    fn first_connection_is_not_a_reformation() {
        let mut t = ReformationTracker::new();
        t.record(&[e(0, 1)]);
        assert_eq!(t.reformation_rate(), 0.0);
    }

    #[test]
    fn empty_tracker_metrics() {
        let t = ReformationTracker::new();
        assert_eq!(t.new_edge_fraction(), 0.0);
        assert_eq!(t.reformation_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid candidate set")]
    fn candidate_degree_rejects_oversized_set() {
        let _ = candidate_set_degree(41, 40);
    }

    #[test]
    fn crowds_predecessor_probability_formula() {
        // n=40, c=4, p_f=0.75: P = 1 - 0.75*35/40 = 0.34375
        let p = crowds_predecessor_probability(40, 4, 0.75);
        assert!((p - 0.34375).abs() < 1e-12);
    }

    #[test]
    fn crowds_probability_grows_with_collaborators() {
        let p1 = crowds_predecessor_probability(40, 2, 0.75);
        let p2 = crowds_predecessor_probability(40, 20, 0.75);
        assert!(p2 > p1);
    }

    #[test]
    fn crowds_probable_innocence_at_paper_scale() {
        // The paper's N=40, p_f=0.75 setting: innocence holds up to a
        // sizeable collaborator count, then breaks.
        assert!(crowds_probable_innocence(40, 4, 0.75));
        assert!(!crowds_probable_innocence(40, 20, 0.75));
    }

    #[test]
    fn crowds_min_network_size_matches_inequality() {
        let p_f = 0.75;
        for c in [1usize, 4, 10] {
            let n_min = crowds_min_network_size(c, p_f);
            let n_ok = n_min.ceil() as usize;
            assert!(crowds_probable_innocence(n_ok, c, p_f), "c={c}");
            if n_min.floor() as usize > c + 1 {
                let n_bad = n_min.floor() as usize - 1;
                if n_bad > c {
                    assert!(!crowds_probable_innocence(n_bad, c, p_f), "c={c} n={n_bad}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "p_forward > 1/2")]
    fn min_size_needs_majority_forwarding() {
        let _ = crowds_min_network_size(2, 0.4);
    }

    #[test]
    fn delivery_tracker_fault_free_run_is_perfect() {
        let mut t = DeliveryTracker::new();
        t.record_scheduled(10);
        for _ in 0..10 {
            t.record_delivered(0.0, false);
        }
        assert_eq!(t.delivery_ratio(), 1.0);
        assert_eq!(t.retries_per_message(), 0.0);
        assert_eq!(t.reformation_latency(), 0.0);
        assert_eq!(t.abandoned(), 0);
    }

    #[test]
    fn delivery_tracker_degradation_accounting() {
        let mut t = DeliveryTracker::new();
        t.record_scheduled(4);
        t.record_delivered(0.0, false); // clean
        t.record_retry();
        t.record_delivered(6.0, true); // one retry, 6 min late
        t.record_retry();
        t.record_retry();
        t.record_delivered(10.0, true); // two retries, 10 min late
        t.record_retry();
        t.record_abandoned(); // budget exhausted
        assert_eq!(t.delivery_ratio(), 0.75);
        assert_eq!(t.retries_per_message(), 1.0);
        assert_eq!(t.reformation_latency(), 8.0);
        assert_eq!(t.abandoned(), 1);
        assert_eq!(t.delivered(), 3);
        assert_eq!(t.retries(), 4);
    }

    #[test]
    fn delivery_tracker_empty_defaults() {
        let t = DeliveryTracker::new();
        assert_eq!(t.delivery_ratio(), 1.0);
        assert_eq!(t.retries_per_message(), 0.0);
        assert_eq!(t.reformation_latency(), 0.0);
    }
}
