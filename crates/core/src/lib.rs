//! # idpa-core — the incentive-driven anonymity forwarding mechanism
//!
//! This crate is the paper's primary contribution (§2): an incentive
//! mechanism for Crowds-style P2P anonymity overlays in which every
//! forwarder makes the routing decision, and the incentive is engineered so
//! that selfish utility maximisation *aligns* with the system-level
//! anonymity objective of a small, stable forwarder set.
//!
//! The pieces, mirroring the paper's structure:
//!
//! * [`contract`] — the `(P_f, P_r)` contract an initiator commits to and
//!   propagates along the path, plus the initiator-side contract planner
//!   (§2.2);
//! * [`envelope`] — the route-formation cryptography: onion-sealed
//!   contract propagation and the MAC-chained path-validation records the
//!   initiator checks before paying (§2.2, §5);
//! * [`history`] — per-node connection history profiles `H^k(s)` (Table 1)
//!   and the *selectivity* `σ(s,v)` derived from them (§2.3);
//! * [`arena`] — the same history state sharded into owner-keyed,
//!   independently lockable shards for parallel connection formation;
//! * [`quality`] — edge quality `q(s,v) = w_s·σ(s,v) + w_a·α(v)` and path
//!   quality (§2.3);
//! * [`utility`] — utility models I and II for forwarders, and the
//!   initiator utility `U_I = A(‖π‖) − ‖π‖·P_f − P_r` (§2.2, §2.4.2–2.4.3);
//! * [`routing`] — next-hop selection: random (the adversary strategy) and
//!   utility-driven under either model, with Crowds-style probabilistic
//!   termination (§2.2, §2.4);
//! * [`path`] — hop-by-hop path formation over a live overlay snapshot;
//! * [`bundle`] — bookkeeping for a bundle of recurring connections
//!   between one (I, R) pair: forwarder set `‖π‖`, per-forwarder benefit
//!   `m·P_f + P_r/‖π‖`, costs;
//! * [`reputation`] — the per-initiator fault ledger behind the adaptive
//!   third quality term `w_r·ρ` (observed drops, timeouts, and
//!   validator-flagged cheaters; §5 cheating tolerance);
//! * [`adversary`] — the malicious-node models (random routing,
//!   availability attack) and the passive intersection attack (§1, §5);
//! * [`metrics`] — path quality `Q(π) = L/‖π‖`, routing efficiency,
//!   entropy-based anonymity degree, and path-reformation counting
//!   (Prop. 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod adversary;
pub mod arena;
pub mod bundle;
pub mod contract;
pub mod envelope;
pub mod history;
pub mod metrics;
pub mod path;
pub mod quality;
pub mod reputation;
pub mod routing;
pub mod utility;

pub use arena::{BundleMirror, HistoryArena};
pub use bundle::{BundleAccounting, BundleId};
pub use contract::Contract;
pub use history::{HistoryProfile, HistoryRead, HistoryWrite};
pub use quality::{EdgeQuality, Weights};
pub use reputation::EdgeReputation;
pub use routing::{PathPolicy, RoutingStrategy};
pub use utility::{InitiatorUtility, UtilityModel};
