//! Sharded, owner-keyed storage for per-node connection history.
//!
//! [`crate::history::HistoryProfile`] keeps each node's Table 1 records in
//! one `Vec<HistoryProfile>` indexed by `NodeId` — a single exclusive
//! borrow, so connection formation for disjoint initiator sets serializes
//! even though the paper's routing decisions are purely node-local.
//! [`HistoryArena`] partitions the same state into `S` owner-keyed shards
//! (`shard_of(node) = node % S`), each behind its own lock, so formation
//! workers can commit paths touching disjoint shard sets concurrently.
//!
//! # Access modes
//!
//! * [`HistoryArena::exclusive`] — zero-lock view through `&mut self`
//!   (`Mutex::get_mut`); the drop-in replacement for the sequential
//!   event-loop runner, where the arena is pure storage partitioning.
//! * [`HistoryArena::read`] — shared view taking one short shard lock per
//!   query; never holds two locks, so it cannot participate in a cycle.
//! * [`HistoryArena::lock_path`] — a formation worker declares every node
//!   its pending path touches and receives all covering shards at once,
//!   acquired in **ascending shard order**. Every multi-shard acquisition
//!   in this module uses that same total order keyed by `NodeId`, which
//!   rules out deadlock and makes the lock schedule independent of thread
//!   interleaving.
//! * [`BundleMirror`] — a worker-private, lock-free replica of one
//!   bundle's records. Selectivity is bundle-scoped (`σ` counts only
//!   connections of the contract's own bundle) and bundle `p`'s records
//!   are written only by pair `p`'s transmissions, so a worker forming
//!   bundle `p` can serve **every** history read from its own mirror —
//!   provably value-identical to reading the shared store — and take
//!   shard locks only at commit time.
//!
//! # Determinism
//!
//! Values never depend on shard count: shards partition storage without
//! changing per-`(node, bundle)` record order, and the property suite in
//! `crates/core/tests/arena_equivalence.rs` pins bit-exact agreement with
//! the flat `Vec<HistoryProfile>` layout under randomized interleaved
//! commits (including dropped-confirmation suffix commits).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::{Mutex, MutexGuard, PoisonError};

use idpa_overlay::NodeId;

use crate::bundle::BundleId;
use crate::history::{ConnCounter, HistoryRead, HistoryRecord, HistoryWrite};
use crate::routing::splitmix64;

/// Build-hasher for small integer keys: accumulates each `u64` word
/// through the SplitMix64 finaliser, so multi-word keys (packed tuples)
/// mix exactly and hashing costs a handful of ALU ops instead of SipHash.
/// Collisions are harmless — `Eq` on the full key decides membership.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Mix64State;

/// Hasher produced by [`Mix64State`]; accepts only whole-word writes.
#[derive(Debug)]
pub(crate) struct Mix64Hasher(u64);

impl BuildHasher for Mix64State {
    type Hasher = Mix64Hasher;

    fn build_hasher(&self) -> Mix64Hasher {
        Mix64Hasher(0)
    }
}

impl Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("Mix64Hasher keys hash via write_u64 only");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }
}

/// Packs a `(predecessor, successor)` pair into one injective `u64` key.
fn pred_succ_key(predecessor: NodeId, successor: NodeId) -> u64 {
    debug_assert!(predecessor.index() < (1 << 32) && successor.index() < (1 << 32));
    ((predecessor.index() as u64) << 32) | successor.index() as u64
}

/// One `(node, bundle)` slot: that node's records for that bundle plus the
/// incremental selectivity indexes. Semantics mirror the private
/// `BundleHistory` inside [`crate::history::HistoryProfile`] exactly:
/// append order is arrival order, eviction drops oldest first and unwinds
/// both indexes, and empty counters are removed.
#[derive(Debug, Clone, Default)]
struct Cell {
    records: Vec<HistoryRecord>,
    by_succ: HashMap<u64, ConnCounter, Mix64State>,
    by_pred_succ: HashMap<u64, ConnCounter, Mix64State>,
}

impl Cell {
    fn push(&mut self, record: HistoryRecord) {
        self.by_succ
            .entry(record.successor.index() as u64)
            .or_default()
            .add(record.connection);
        self.by_pred_succ
            .entry(pred_succ_key(record.predecessor, record.successor))
            .or_default()
            .add(record.connection);
        self.records.push(record);
    }

    fn evict_oldest(&mut self, n: usize) {
        for old in self.records.drain(..n) {
            let succ_key = old.successor.index() as u64;
            if let Some(counter) = self.by_succ.get_mut(&succ_key) {
                counter.remove(old.connection);
                if counter.is_empty() {
                    self.by_succ.remove(&succ_key);
                }
            }
            let pair_key = pred_succ_key(old.predecessor, old.successor);
            if let Some(counter) = self.by_pred_succ.get_mut(&pair_key) {
                counter.remove(old.connection);
                if counter.is_empty() {
                    self.by_pred_succ.remove(&pair_key);
                }
            }
        }
    }

    /// Appends one record, enforcing the per-bundle retention bound.
    fn record(&mut self, record: HistoryRecord, capacity: Option<usize>) {
        self.push(record);
        if let Some(cap) = capacity {
            if self.records.len() > cap {
                let overflow = self.records.len() - cap;
                self.evict_oldest(overflow);
            }
        }
    }

    /// Distinct prior connections on which the owner forwarded to `v`.
    fn distinct_succ(&self, priors: u32, v: NodeId) -> usize {
        self.by_succ
            .get(&(v.index() as u64))
            .map_or(0, |c| c.distinct_below(priors))
    }

    /// Distinct prior connections `predecessor -> owner -> v`.
    fn distinct_pred_succ(&self, priors: u32, predecessor: NodeId, v: NodeId) -> usize {
        self.by_pred_succ
            .get(&pred_succ_key(predecessor, v))
            .map_or(0, |c| c.distinct_below(priors))
    }
}

/// Selectivity from an optional cell, matching
/// [`crate::history::HistoryProfile::selectivity`] bit-for-bit: zero
/// priors or no records for the bundle yield `0.0`.
fn cell_selectivity(cell: Option<&Cell>, priors: u32, v: NodeId) -> f64 {
    if priors == 0 {
        return 0.0;
    }
    match cell {
        Some(c) => c.distinct_succ(priors, v) as f64 / f64::from(priors),
        None => 0.0,
    }
}

/// Position-aware variant, matching
/// [`crate::history::HistoryProfile::selectivity_from`].
fn cell_selectivity_from(cell: Option<&Cell>, priors: u32, predecessor: NodeId, v: NodeId) -> f64 {
    if priors == 0 {
        return 0.0;
    }
    match cell {
        Some(c) => c.distinct_pred_succ(priors, predecessor, v) as f64 / f64::from(priors),
        None => 0.0,
    }
}

/// Number of bits in a shard's `(node, bundle)` membership filter.
const FILTER_BITS: usize = 1 << 13;

/// Hash used for the membership filter (independent of the map hash).
fn filter_slot(node: u64, bundle: u64) -> usize {
    (splitmix64(node.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bundle) as usize) & (FILTER_BITS - 1)
}

/// One shard: the cells of every node whose index maps here, keyed by
/// `(node index, bundle id)`, plus a small never-cleared membership filter
/// that lets the common "this node has no history for this bundle yet"
/// query answer without probing the map.
#[derive(Debug, Default)]
struct Shard {
    cells: HashMap<(u64, u64), Cell, Mix64State>,
    filter: Vec<u64>,
}

impl Shard {
    fn filter_hit(&self, node: u64, bundle: u64) -> bool {
        if self.filter.is_empty() {
            return false;
        }
        let slot = filter_slot(node, bundle);
        self.filter[slot / 64] & (1 << (slot % 64)) != 0
    }

    fn cell(&self, node: NodeId, bundle: BundleId) -> Option<&Cell> {
        let (n, b) = (node.index() as u64, bundle.0);
        if !self.filter_hit(n, b) {
            return None;
        }
        self.cells.get(&(n, b))
    }

    fn cell_mut(&mut self, node: NodeId, bundle: BundleId) -> &mut Cell {
        let (n, b) = (node.index() as u64, bundle.0);
        if self.filter.is_empty() {
            self.filter = vec![0; FILTER_BITS / 64];
        }
        let slot = filter_slot(n, b);
        self.filter[slot / 64] |= 1 << (slot % 64);
        self.cells.entry((n, b)).or_default()
    }

    /// Transplants a fully-built cell into a vacant `(node, bundle)` slot.
    fn insert_cell(&mut self, node: u64, bundle: u64, cell: Cell) {
        if self.filter.is_empty() {
            self.filter = vec![0; FILTER_BITS / 64];
        }
        let slot = filter_slot(node, bundle);
        self.filter[slot / 64] |= 1 << (slot % 64);
        let prev = self.cells.insert((node, bundle), cell);
        assert!(
            prev.is_none(),
            "absorb_mirror target slot must be vacant: a bundle commits exactly once"
        );
    }
}

/// Recovers a shard from a poisoned mutex: the arena holds plain data with
/// no invariants spanning a single mutation, and a worker panic aborts the
/// whole deterministic run anyway, so the state is safe to observe.
fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Owner-keyed sharded history store. See the module docs for the access
/// modes and the deadlock/determinism argument.
#[derive(Debug)]
pub struct HistoryArena {
    shards: Vec<Mutex<Shard>>,
    n_nodes: usize,
    capacity_per_bundle: Option<usize>,
}

impl HistoryArena {
    /// An arena for `n_nodes` owners split over `shard_count` shards with
    /// unbounded per-bundle retention. `shard_count` is clamped to
    /// `1..=max(n_nodes, 1)` — more shards than owners buys nothing.
    #[must_use]
    pub fn new(n_nodes: usize, shard_count: usize) -> Self {
        Self::with_capacity(n_nodes, shard_count, None)
    }

    /// As [`HistoryArena::new`], retaining at most `capacity` records per
    /// `(node, bundle)` when `Some` (oldest evicted first, matching
    /// [`crate::history::HistoryProfile::with_capacity`]).
    ///
    /// # Panics
    /// If `capacity` is `Some(0)`.
    #[must_use]
    pub fn with_capacity(n_nodes: usize, shard_count: usize, capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "capacity must be positive");
        let shards = shard_count.clamp(1, n_nodes.max(1));
        HistoryArena {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            n_nodes,
            capacity_per_bundle: capacity,
        }
    }

    /// Number of owners the arena was sized for.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of shards actually allocated (after clamping).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-bundle retention bound, if any.
    #[must_use]
    pub fn capacity_per_bundle(&self) -> Option<usize> {
        self.capacity_per_bundle
    }

    /// Home shard of `node` — the modulo map that keys every lock-order
    /// decision in this module.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        node.index() % self.shards.len()
    }

    /// Zero-lock exclusive view: with `&mut self` no other borrow can
    /// exist, so every shard is reached through `Mutex::get_mut`.
    pub fn exclusive(&mut self) -> ArenaExclusive<'_> {
        let capacity = self.capacity_per_bundle;
        ArenaExclusive {
            shards: self
                .shards
                .iter_mut()
                .map(|m| unpoison(m.get_mut()))
                .collect(),
            capacity,
        }
    }

    /// Shared read view; each query takes exactly one shard lock, briefly.
    #[must_use]
    pub fn read(&self) -> ArenaRead<'_> {
        ArenaRead { arena: self }
    }

    /// Locks every shard covering `nodes`, in ascending shard order, and
    /// returns a write handle over exactly that shard set. Workers whose
    /// paths touch disjoint shard sets proceed concurrently; overlapping
    /// workers serialize in the deterministic `NodeId`-keyed order.
    #[must_use]
    pub fn lock_path(&self, nodes: impl IntoIterator<Item = NodeId>) -> PathGuards<'_> {
        let mut ids: Vec<usize> = nodes.into_iter().map(|n| self.shard_of(n)).collect();
        ids.sort_unstable();
        ids.dedup();
        PathGuards {
            guards: ids
                .into_iter()
                .map(|i| (i, unpoison(self.shards[i].lock())))
                .collect(),
            shard_count: self.shards.len(),
            capacity: self.capacity_per_bundle,
        }
    }

    /// Moves every cell of a finished bundle mirror into the arena in one
    /// bulk commit, leaving the mirror empty. Covering shards are locked
    /// one at a time in **ascending shard order** (never two at once);
    /// each `(node, bundle)` cell is transplanted wholesale — records and
    /// both selectivity indexes — skipping the per-record re-indexing a
    /// replay through [`HistoryWrite`] would pay.
    ///
    /// The destination slots must be vacant: a bundle is formed by exactly
    /// one pair, so its cells are committed exactly once. The final arena
    /// state is identical to committing every record individually (the
    /// mirror maintained the same append/evict semantics along the way).
    ///
    /// # Panics
    /// If the arena already holds records for `(node, mirror.bundle())`,
    /// or (debug builds) if the retention bounds disagree.
    pub fn absorb_mirror(&self, mirror: &mut BundleMirror) {
        debug_assert_eq!(
            self.capacity_per_bundle, mirror.capacity_per_bundle,
            "mirror and arena retention bounds must match for value-identity"
        );
        let bundle = mirror.bundle.0;
        let mut cells: Vec<(usize, u64, Cell)> = mirror
            .cells
            .drain()
            .map(|(node, cell)| (node as usize % self.shards.len(), node, cell))
            .collect();
        cells.sort_unstable_by_key(|&(shard, node, _)| (shard, node));
        let mut cells = cells.into_iter().peekable();
        while let Some(&(shard_id, _, _)) = cells.peek() {
            let mut shard = unpoison(self.shards[shard_id].lock());
            while let Some((node, cell)) = cells
                .next_if(|&(s, _, _)| s == shard_id)
                .map(|(_, node, cell)| (node, cell))
            {
                shard.insert_cell(node, bundle, cell);
            }
        }
    }

    /// The records node `node` holds for `bundle`, oldest first (clones —
    /// an inspection/test helper, not a hot path).
    #[must_use]
    pub fn records(&self, node: NodeId, bundle: BundleId) -> Vec<HistoryRecord> {
        let shard = unpoison(self.shards[self.shard_of(node)].lock());
        shard
            .cell(node, bundle)
            .map(|c| c.records.clone())
            .unwrap_or_default()
    }

    /// Total records retained across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|m| {
                let shard = unpoison(m.lock());
                shard.cells.values().map(|c| c.records.len()).sum::<usize>()
            })
            .sum()
    }

    /// Whether the arena holds no records at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot export: every `(node, bundle)` cell's retained records,
    /// oldest first, sorted by `(node, bundle)` — a pure function of the
    /// arena's value, independent of shard count and hash-map order.
    ///
    /// Restore is replay: push each cell's records through
    /// [`HistoryArena::exclusive`]'s [`HistoryWrite::record_hop`] into a
    /// fresh arena with the same retention bound. Eviction already
    /// unwound the selectivity indexes to exactly the state the retained
    /// records imply, and a cell's retained count never exceeds the
    /// per-bundle capacity, so replay reproduces records, indexes and
    /// membership-filter bits identically.
    #[must_use]
    pub fn snapshot_cells(&self) -> Vec<(u64, u64, Vec<HistoryRecord>)> {
        let mut out = Vec::new();
        for m in &self.shards {
            let shard = unpoison(m.lock());
            for (&(node, bundle), cell) in &shard.cells {
                out.push((node, bundle, cell.records.clone()));
            }
        }
        out.sort_unstable_by_key(|&(node, bundle, _)| (node, bundle));
        out
    }
}

/// Exclusive no-lock view over every shard — see
/// [`HistoryArena::exclusive`].
#[derive(Debug)]
pub struct ArenaExclusive<'a> {
    shards: Vec<&'a mut Shard>,
    capacity: Option<usize>,
}

impl ArenaExclusive<'_> {
    fn shard(&self, node: NodeId) -> &Shard {
        &*self.shards[node.index() % self.shards.len()]
    }
}

impl HistoryRead for ArenaExclusive<'_> {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        cell_selectivity(self.shard(s).cell(s, bundle), priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        cell_selectivity_from(self.shard(s).cell(s, bundle), priors, predecessor, v)
    }
}

impl HistoryWrite for ArenaExclusive<'_> {
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        let shard_idx = node.index() % self.shards.len();
        let capacity = self.capacity;
        self.shards[shard_idx].cell_mut(node, bundle).record(
            HistoryRecord {
                bundle,
                connection,
                predecessor,
                successor,
            },
            capacity,
        );
    }
}

/// Shared read view — see [`HistoryArena::read`]. Holds at most one shard
/// lock at a time, for the duration of one query.
#[derive(Debug, Clone, Copy)]
pub struct ArenaRead<'a> {
    arena: &'a HistoryArena,
}

impl HistoryRead for ArenaRead<'_> {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        let shard = unpoison(self.arena.shards[self.arena.shard_of(s)].lock());
        cell_selectivity(shard.cell(s, bundle), priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        let shard = unpoison(self.arena.shards[self.arena.shard_of(s)].lock());
        cell_selectivity_from(shard.cell(s, bundle), priors, predecessor, v)
    }
}

/// Write handle over the shards covering one pending path — see
/// [`HistoryArena::lock_path`]. The guard vector is ordered by ascending
/// shard id; lookups scan it linearly (paths touch at most a handful of
/// shards).
#[derive(Debug)]
pub struct PathGuards<'a> {
    guards: Vec<(usize, MutexGuard<'a, Shard>)>,
    shard_count: usize,
    capacity: Option<usize>,
}

impl HistoryWrite for PathGuards<'_> {
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        let target = node.index() % self.shard_count;
        let capacity = self.capacity;
        let (_, shard) = self
            .guards
            .iter_mut()
            .find(|(i, _)| *i == target)
            .expect("lock_path must cover every node the commit touches");
        shard.cell_mut(node, bundle).record(
            HistoryRecord {
                bundle,
                connection,
                predecessor,
                successor,
            },
            capacity,
        );
    }
}

/// Worker-private replica of one bundle's history — the lock-free read
/// path for parallel formation. See the module docs for why mirror reads
/// are value-identical to shared-store reads.
///
/// Reads for any *other* bundle answer `0.0`/empty — the formation worker
/// never issues them (selectivity is always queried for the contract's own
/// bundle); debug builds assert this.
#[derive(Debug)]
pub struct BundleMirror {
    bundle: BundleId,
    cells: HashMap<u64, Cell, Mix64State>,
    capacity_per_bundle: Option<usize>,
}

impl BundleMirror {
    /// An empty mirror for `bundle` with the given per-bundle retention
    /// bound (must match the shared store's bound for value-identity).
    ///
    /// # Panics
    /// If `capacity` is `Some(0)`.
    #[must_use]
    pub fn new(bundle: BundleId, capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "capacity must be positive");
        BundleMirror {
            bundle,
            cells: HashMap::default(),
            capacity_per_bundle: capacity,
        }
    }

    /// Rebinds the mirror to a new bundle, clearing all cells — lets one
    /// worker reuse its allocation across the pairs of a work item.
    pub fn reset(&mut self, bundle: BundleId) {
        self.bundle = bundle;
        self.cells.clear();
    }

    /// The bundle this mirror replicates.
    #[must_use]
    pub fn bundle(&self) -> BundleId {
        self.bundle
    }

    /// The records the mirror holds for `node`, oldest first.
    #[must_use]
    pub fn node_records(&self, node: NodeId) -> &[HistoryRecord] {
        self.cells
            .get(&(node.index() as u64))
            .map_or(&[], |c| c.records.as_slice())
    }

    fn cell(&self, node: NodeId, bundle: BundleId) -> Option<&Cell> {
        debug_assert_eq!(
            bundle, self.bundle,
            "BundleMirror queried for a foreign bundle"
        );
        if bundle != self.bundle {
            return None;
        }
        self.cells.get(&(node.index() as u64))
    }
}

impl HistoryRead for BundleMirror {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        cell_selectivity(self.cell(s, bundle), priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        cell_selectivity_from(self.cell(s, bundle), priors, predecessor, v)
    }
}

impl HistoryWrite for BundleMirror {
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        debug_assert_eq!(
            bundle, self.bundle,
            "BundleMirror committed a foreign bundle"
        );
        if bundle != self.bundle {
            return;
        }
        let capacity = self.capacity_per_bundle;
        self.cells.entry(node.index() as u64).or_default().record(
            HistoryRecord {
                bundle,
                connection,
                predecessor,
                successor,
            },
            capacity,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryProfile;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(HistoryArena::new(5, 0).shard_count(), 1);
        assert_eq!(HistoryArena::new(5, 3).shard_count(), 3);
        assert_eq!(HistoryArena::new(5, 64).shard_count(), 5);
        assert_eq!(HistoryArena::new(0, 64).shard_count(), 1);
    }

    #[test]
    fn exclusive_matches_profile_semantics() {
        let mut profile = HistoryProfile::new(n(1));
        let mut arena = HistoryArena::new(8, 3);
        let b = BundleId(4);
        for (conn, (p, s)) in [(0, 2), (0, 3), (1, 2), (2, 5)].into_iter().enumerate() {
            profile.record(b, conn as u32, n(p), n(s));
            arena
                .exclusive()
                .record_hop(n(1), b, conn as u32, n(p), n(s));
        }
        let ex = arena.exclusive();
        for priors in 0..5u32 {
            for v in 0..6 {
                assert_eq!(
                    profile.selectivity(b, priors, n(v)).to_bits(),
                    ex.selectivity_at(n(1), b, priors, n(v)).to_bits()
                );
                assert_eq!(
                    profile.selectivity_from(b, priors, n(0), n(v)).to_bits(),
                    ex.selectivity_from_at(n(1), b, priors, n(0), n(v))
                        .to_bits()
                );
            }
        }
    }

    #[test]
    fn lock_path_and_read_agree_with_exclusive() {
        let arena = HistoryArena::new(10, 4);
        let b = BundleId(0);
        {
            let mut guards = arena.lock_path([n(3), n(7), n(2)]);
            guards.record_hop(n(3), b, 0, n(1), n(7));
            guards.record_hop(n(7), b, 0, n(3), n(2));
        }
        let r = arena.read();
        assert_eq!(r.selectivity_at(n(3), b, 1, n(7)), 1.0);
        assert_eq!(r.selectivity_at(n(7), b, 1, n(2)), 1.0);
        assert_eq!(r.selectivity_at(n(7), b, 1, n(9)), 0.0);
        assert_eq!(r.selectivity_from_at(n(7), b, 1, n(3), n(2)), 1.0);
        assert_eq!(r.selectivity_from_at(n(7), b, 1, n(1), n(2)), 0.0);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.records(n(3), b).len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_like_profile() {
        let mut profile = HistoryProfile::with_capacity(n(0), 2);
        let mut arena = HistoryArena::with_capacity(4, 2, Some(2));
        let b = BundleId(9);
        for conn in 0..5u32 {
            profile.record(b, conn, n(1), n(conn as usize % 3));
            arena
                .exclusive()
                .record_hop(n(0), b, conn, n(1), n(conn as usize % 3));
        }
        assert_eq!(arena.records(n(0), b), profile.bundle_records(b).to_vec());
        let ex = arena.exclusive();
        for priors in 0..6u32 {
            for v in 0..3 {
                assert_eq!(
                    profile.selectivity(b, priors, n(v)).to_bits(),
                    ex.selectivity_at(n(0), b, priors, n(v)).to_bits()
                );
            }
        }
    }

    #[test]
    fn absorb_mirror_matches_record_by_record_commit() {
        let replayed = {
            let mut arena = HistoryArena::with_capacity(10, 3, Some(2));
            let mut ex = arena.exclusive();
            for conn in 0..5u32 {
                ex.record_hop(n(2), BundleId(7), conn, n(1), n(conn as usize % 3));
                ex.record_hop(n(6), BundleId(7), conn, n(2), n(4));
            }
            drop(ex);
            arena
        };
        let absorbed = {
            let arena = HistoryArena::with_capacity(10, 3, Some(2));
            let mut mirror = BundleMirror::new(BundleId(7), Some(2));
            for conn in 0..5u32 {
                mirror.record_hop(n(2), BundleId(7), conn, n(1), n(conn as usize % 3));
                mirror.record_hop(n(6), BundleId(7), conn, n(2), n(4));
            }
            arena.absorb_mirror(&mut mirror);
            assert!(
                mirror.node_records(n(2)).is_empty(),
                "absorb drains the mirror"
            );
            arena
        };
        for node in 0..10 {
            assert_eq!(
                absorbed.records(n(node), BundleId(7)),
                replayed.records(n(node), BundleId(7)),
                "node {node}"
            );
        }
        let ex = absorbed;
        for priors in 0..6u32 {
            for v in 0..5 {
                assert_eq!(
                    ex.read()
                        .selectivity_at(n(2), BundleId(7), priors, n(v))
                        .to_bits(),
                    replayed
                        .read()
                        .selectivity_at(n(2), BundleId(7), priors, n(v))
                        .to_bits()
                );
            }
        }
    }

    #[test]
    fn mirror_tracks_only_its_bundle() {
        let mut mirror = BundleMirror::new(BundleId(3), None);
        mirror.record_hop(n(2), BundleId(3), 0, n(1), n(4));
        assert_eq!(mirror.selectivity_at(n(2), BundleId(3), 1, n(4)), 1.0);
        assert_eq!(mirror.node_records(n(2)).len(), 1);
        mirror.reset(BundleId(5));
        assert_eq!(mirror.selectivity_at(n(2), BundleId(5), 1, n(4)), 0.0);
        assert!(mirror.node_records(n(2)).is_empty());
    }
}
