//! Adversary models (§1, §2.4, §5).
//!
//! * **Random routing**: "We model an adversary's routing strategy as
//!   random routing" — realised by [`crate::routing::RoutingStrategy::Random`],
//!   which malicious nodes use regardless of the configured good-node
//!   strategy.
//! * **Availability attack** (§5 attack 1): "malicious nodes become highly
//!   available and wait for paths to be reformed through them" —
//!   [`apply_availability_attack`] rewrites the attackers' churn schedules
//!   to permanent uptime.
//! * **Intersection attack** (§1, §2.1): a passive observer correlates the
//!   sets of *active* nodes across the recurring connections it can see;
//!   the initiator must lie in every such set, so the candidate set shrinks
//!   with each observation — [`IntersectionAttack`].

use std::collections::HashSet;

use idpa_netmodel::NodeSchedule;
use idpa_overlay::NodeId;

/// Rewrites the schedules of `attackers` to a single session spanning
/// `[0, horizon]` — the §5 availability attack. Returns the modified trace.
#[must_use]
pub fn apply_availability_attack(
    mut schedules: Vec<NodeSchedule>,
    attackers: &[NodeId],
    horizon: f64,
) -> Vec<NodeSchedule> {
    assert!(horizon > 0.0, "horizon must be positive");
    for &a in attackers {
        schedules[a.index()] = NodeSchedule::from_sessions(vec![(0.0, horizon)]);
    }
    schedules
}

/// A passive intersection attack on initiator anonymity.
///
/// Each time the adversary observes one of the target's recurring
/// connections (i.e. a malicious node sits on the path, or the attacker
/// taps the responder), it intersects its candidate-initiator set with the
/// set of nodes active at that moment. `‖candidates‖ = 1` means the
/// initiator is exposed.
#[derive(Debug, Clone, Default)]
pub struct IntersectionAttack {
    candidates: Option<HashSet<NodeId>>,
    observations: u32,
}

impl IntersectionAttack {
    /// A fresh attack with no observations.
    #[must_use]
    pub fn new() -> Self {
        IntersectionAttack::default()
    }

    /// Incorporates one observation: the set of nodes active while a
    /// target connection ran. (The true initiator is always active during
    /// its own connection, so it survives every intersection.)
    pub fn observe(&mut self, active: &HashSet<NodeId>) {
        self.observations += 1;
        match &mut self.candidates {
            None => self.candidates = Some(active.clone()),
            Some(c) => c.retain(|n| active.contains(n)),
        }
    }

    /// Observations incorporated so far.
    #[must_use]
    pub fn observations(&self) -> u32 {
        self.observations
    }

    /// Size of the current candidate set (`usize::MAX` before any
    /// observation — every node is a candidate).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.candidates.as_ref().map_or(usize::MAX, HashSet::len)
    }

    /// The candidate set, if any observation happened.
    #[must_use]
    pub fn candidates(&self) -> Option<&HashSet<NodeId>> {
        self.candidates.as_ref()
    }

    /// Whether the attack has narrowed the candidates to exactly one node.
    #[must_use]
    pub fn exposed(&self) -> bool {
        self.candidate_count() == 1
    }

    /// Snapshot export: the observation count and, if any observation
    /// happened, the candidate set sorted by node index. The
    /// `None`/`Some` distinction is preserved — `None` means "every node
    /// is a candidate" and must not collapse to an empty set.
    #[must_use]
    pub fn snapshot_state(&self) -> (u32, Option<Vec<NodeId>>) {
        let candidates = self.candidates.as_ref().map(|c| {
            let mut v: Vec<NodeId> = c.iter().copied().collect();
            v.sort_unstable_by_key(|n| n.index());
            v
        });
        (self.observations, candidates)
    }

    /// Rebuilds an attack from an [`IntersectionAttack::snapshot_state`]
    /// export.
    #[must_use]
    pub fn from_snapshot(observations: u32, candidates: Option<Vec<NodeId>>) -> Self {
        IntersectionAttack {
            candidates: candidates.map(|v| v.into_iter().collect()),
            observations,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use idpa_desim::SimTime;

    fn set(ids: &[usize]) -> HashSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn availability_attack_pins_attackers_up() {
        let schedules = vec![
            NodeSchedule::from_sessions(vec![(0.0, 10.0)]),
            NodeSchedule::from_sessions(vec![(5.0, 10.0)]),
        ];
        let out = apply_availability_attack(schedules, &[NodeId(1)], 100.0);
        assert!(out[1].is_up(SimTime::new(0.0)));
        assert!(out[1].is_up(SimTime::new(99.0)));
        assert_eq!(out[1].availability(), 1.0);
        // Non-attacker untouched.
        assert!(!out[0].is_up(SimTime::new(50.0)));
    }

    #[test]
    fn intersection_shrinks_candidates() {
        let mut atk = IntersectionAttack::new();
        assert_eq!(atk.candidate_count(), usize::MAX);
        atk.observe(&set(&[0, 1, 2, 3]));
        assert_eq!(atk.candidate_count(), 4);
        atk.observe(&set(&[0, 1, 5]));
        assert_eq!(atk.candidate_count(), 2);
        atk.observe(&set(&[1, 7]));
        assert!(atk.exposed());
        assert!(atk.candidates().unwrap().contains(&NodeId(1)));
        assert_eq!(atk.observations(), 3);
    }

    #[test]
    fn true_initiator_survives_every_intersection() {
        // The initiator (node 0) is in every active set by construction.
        let mut atk = IntersectionAttack::new();
        for extra in [[1, 2], [3, 4], [5, 6]] {
            let mut s = set(&extra);
            s.insert(NodeId(0));
            atk.observe(&s);
        }
        assert!(atk.candidates().unwrap().contains(&NodeId(0)));
        assert!(atk.exposed());
    }

    #[test]
    fn fewer_observations_leave_more_anonymity() {
        // The quantitative point of minimising path reformations: each
        // observation can only shrink the candidate set.
        let observations = [
            set(&[0, 1, 2, 3, 4, 5]),
            set(&[0, 1, 2, 3]),
            set(&[0, 2, 3]),
            set(&[0, 3]),
        ];
        let mut few = IntersectionAttack::new();
        few.observe(&observations[0]);
        few.observe(&observations[1]);
        let mut many = IntersectionAttack::new();
        for o in &observations {
            many.observe(o);
        }
        assert!(few.candidate_count() >= many.candidate_count());
    }

    #[test]
    fn disjoint_observation_empties_candidates() {
        let mut atk = IntersectionAttack::new();
        atk.observe(&set(&[1, 2]));
        atk.observe(&set(&[3, 4]));
        assert_eq!(atk.candidate_count(), 0);
        assert!(!atk.exposed());
    }
}
