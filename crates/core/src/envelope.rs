//! Route-formation cryptography (§2.2, §5).
//!
//! Two pieces of the protocol need actual cryptographic sealing:
//!
//! 1. **Contract propagation.** "The establishment of the forwarding path
//!    is based on propagation of contract information (P_f and P_r)
//!    through the intermediate nodes" — and the mechanism "cannot leak the
//!    identity information". The initiator seals the contract in layers
//!    (ChaCha20 under per-hop keys): each forwarder peels exactly one
//!    layer, learning the terms but nothing the inner layers carry.
//!
//! 2. **Path validation.** "Each intermediate forwarder also includes path
//!    information which is then used by I to recreate the path and
//!    validate it." Each forwarder appends a [`PathRecord`] MAC'd under the
//!    bundle key as the confirmation flows back; [`validate_path`] checks
//!    the chain is complete, in order, and untampered before the initiator
//!    pays.

use idpa_crypto::chacha20::ChaCha20;
use idpa_crypto::hmac::{hmac_sha256, verify_hmac};
use idpa_crypto::sha256::Sha256;
use idpa_overlay::NodeId;

use crate::bundle::BundleId;
use crate::contract::Contract;

/// A symmetric per-hop key (in a deployment, established via the hop's
/// public key; the simulation derives it from shared secrets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopKey(pub [u8; 32]);

impl HopKey {
    /// Derives a hop key from a bundle secret and the hop index.
    #[must_use]
    pub fn derive(bundle_secret: &[u8], hop: u32) -> Self {
        let mut h = Sha256::new();
        h.update(bundle_secret);
        h.update(b"hop-key");
        h.update(&hop.to_be_bytes());
        HopKey(h.finalize())
    }
}

/// Magic tag marking a successfully unsealed contract: without it, a
/// partially peeled onion (which is still ciphertext of the same length)
/// could parse as garbage terms.
const CONTRACT_MAGIC: &[u8; 8] = b"IDPACTRT";

/// Canonical byte encoding of the contract terms a forwarder needs.
#[must_use]
pub fn encode_contract(contract: &Contract) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 8 + 8 + 8);
    out.extend_from_slice(CONTRACT_MAGIC);
    out.extend_from_slice(&contract.bundle.0.to_be_bytes());
    out.extend_from_slice(&(contract.responder.index() as u64).to_be_bytes());
    out.extend_from_slice(&contract.pf.to_be_bytes());
    out.extend_from_slice(&contract.pr.to_be_bytes());
    out
}

/// Decodes [`encode_contract`]'s output.
#[must_use]
pub fn decode_contract(bytes: &[u8]) -> Option<Contract> {
    if bytes.len() != 40 || &bytes[..8] != CONTRACT_MAGIC {
        return None;
    }
    let bytes = &bytes[8..];
    let bundle = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
    let responder = u64::from_be_bytes(bytes[8..16].try_into().ok()?) as usize;
    let pf = f64::from_be_bytes(bytes[16..24].try_into().ok()?);
    let pr = f64::from_be_bytes(bytes[24..32].try_into().ok()?);
    if !pf.is_finite() || !pr.is_finite() || pf < 0.0 || pr < 0.0 {
        return None;
    }
    Some(Contract::new(BundleId(bundle), NodeId(responder), pf, pr))
}

fn layer_nonce(layer: u32) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..4].copy_from_slice(&layer.to_be_bytes());
    nonce
}

/// Seals `payload` in onion layers: the **first** key in `hop_keys`
/// belongs to the first forwarder and is applied last, so it is the first
/// peeled.
#[must_use]
pub fn seal_layers(payload: &[u8], hop_keys: &[HopKey]) -> Vec<u8> {
    let mut data = payload.to_vec();
    for (layer, key) in hop_keys.iter().enumerate().rev() {
        data = ChaCha20::encrypt(&key.0, &layer_nonce(layer as u32), &data);
    }
    data
}

/// Peels one layer (to be called by hop `layer` with its own key).
#[must_use]
pub fn peel_layer(sealed: &[u8], key: &HopKey, layer: u32) -> Vec<u8> {
    ChaCha20::decrypt(&key.0, &layer_nonce(layer), sealed)
}

/// One hop's path-information record, appended to the confirmation on the
/// reverse path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRecord {
    /// Connection index within the bundle.
    pub connection: u32,
    /// Hop position (0 = first forwarder after the initiator).
    pub hop: u32,
    /// The forwarder that served this hop.
    pub node: NodeId,
    /// MAC under the bundle key over `(connection, hop, node)`.
    pub mac: [u8; 32],
}

impl PathRecord {
    fn message(connection: u32, hop: u32, node: NodeId) -> Vec<u8> {
        let mut msg = Vec::with_capacity(4 + 4 + 8);
        msg.extend_from_slice(&connection.to_be_bytes());
        msg.extend_from_slice(&hop.to_be_bytes());
        msg.extend_from_slice(&(node.index() as u64).to_be_bytes());
        msg
    }

    /// Issues the record (executed by the forwarder holding the bundle
    /// key material on the reverse path).
    #[must_use]
    pub fn issue(bundle_key: &[u8], connection: u32, hop: u32, node: NodeId) -> Self {
        PathRecord {
            connection,
            hop,
            node,
            mac: hmac_sha256(bundle_key, &Self::message(connection, hop, node)),
        }
    }

    /// Verifies the MAC.
    #[must_use]
    pub fn verify(&self, bundle_key: &[u8]) -> bool {
        verify_hmac(
            bundle_key,
            &Self::message(self.connection, self.hop, self.node),
            &self.mac,
        )
    }
}

/// Why path validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathValidationError {
    /// A record's MAC did not verify (tampering).
    BadMac {
        /// Index of the offending record.
        index: usize,
    },
    /// Records are not a contiguous hop sequence starting at 0.
    BrokenChain {
        /// The hop index expected at the break.
        expected_hop: u32,
    },
    /// Records mix connection ids.
    MixedConnections,
    /// No records at all.
    Empty,
}

/// Validates a reverse-path record chain and reconstructs the forwarder
/// sequence — what the initiator runs before authorising payment.
pub fn validate_path(
    records: &[PathRecord],
    bundle_key: &[u8],
) -> Result<Vec<NodeId>, PathValidationError> {
    if records.is_empty() {
        return Err(PathValidationError::Empty);
    }
    let connection = records[0].connection;
    let mut path = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        if r.connection != connection {
            return Err(PathValidationError::MixedConnections);
        }
        if !r.verify(bundle_key) {
            return Err(PathValidationError::BadMac { index: i });
        }
        if r.hop != i as u32 {
            return Err(PathValidationError::BrokenChain {
                expected_hop: i as u32,
            });
        }
        path.push(r.node);
    }
    Ok(path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    const KEY: &[u8] = b"bundle key material";

    fn contract() -> Contract {
        Contract::new(BundleId(5), NodeId(9), 62.5, 125.0)
    }

    #[test]
    fn contract_encoding_round_trips() {
        let c = contract();
        let decoded = decode_contract(&encode_contract(&c)).unwrap();
        assert_eq!(decoded, c);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_contract(&[]).is_none());
        assert!(decode_contract(&[0u8; 39]).is_none());
        let mut bytes = encode_contract(&contract());
        // Corrupt pf into a negative number.
        bytes[24..32].copy_from_slice(&(-5.0f64).to_be_bytes());
        assert!(decode_contract(&bytes).is_none());
        // Corrupt the magic.
        let mut bytes = encode_contract(&contract());
        bytes[0] ^= 1;
        assert!(decode_contract(&bytes).is_none());
    }

    #[test]
    fn onion_peels_in_hop_order() {
        let secret = b"bundle secret";
        let keys: Vec<HopKey> = (0..3).map(|h| HopKey::derive(secret, h)).collect();
        let payload = encode_contract(&contract());
        let sealed = seal_layers(&payload, &keys);
        assert_ne!(sealed, payload);

        // Hop 0 peels first, then 1, then 2.
        let after0 = peel_layer(&sealed, &keys[0], 0);
        assert!(decode_contract(&after0).is_none(), "still sealed for hop 1");
        let after1 = peel_layer(&after0, &keys[1], 1);
        let after2 = peel_layer(&after1, &keys[2], 2);
        assert_eq!(decode_contract(&after2).unwrap(), contract());
    }

    #[test]
    fn wrong_key_leaves_payload_sealed() {
        let secret = b"bundle secret";
        let keys: Vec<HopKey> = (0..2).map(|h| HopKey::derive(secret, h)).collect();
        let wrong = HopKey::derive(b"other secret", 0);
        let sealed = seal_layers(&encode_contract(&contract()), &keys);
        let peeled = peel_layer(&peel_layer(&sealed, &wrong, 0), &keys[1], 1);
        assert!(decode_contract(&peeled).is_none());
    }

    #[test]
    fn hop_keys_are_distinct() {
        let a = HopKey::derive(b"s", 0);
        let b = HopKey::derive(b"s", 1);
        let c = HopKey::derive(b"t", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn path_validation_reconstructs_hops() {
        let records: Vec<PathRecord> = (0..4)
            .map(|h| PathRecord::issue(KEY, 2, h, NodeId(10 + h as usize)))
            .collect();
        let path = validate_path(&records, KEY).unwrap();
        assert_eq!(path, vec![NodeId(10), NodeId(11), NodeId(12), NodeId(13)]);
    }

    #[test]
    fn tampered_record_detected() {
        let mut records: Vec<PathRecord> = (0..3)
            .map(|h| PathRecord::issue(KEY, 2, h, NodeId(h as usize)))
            .collect();
        records[1].node = NodeId(42); // claim a different forwarder
        assert_eq!(
            validate_path(&records, KEY),
            Err(PathValidationError::BadMac { index: 1 })
        );
    }

    #[test]
    fn reordered_chain_detected() {
        let r0 = PathRecord::issue(KEY, 2, 0, NodeId(1));
        let r1 = PathRecord::issue(KEY, 2, 1, NodeId(2));
        assert_eq!(
            validate_path(&[r1, r0], KEY),
            Err(PathValidationError::BrokenChain { expected_hop: 0 })
        );
    }

    #[test]
    fn dropped_hop_detected() {
        let r0 = PathRecord::issue(KEY, 2, 0, NodeId(1));
        let r2 = PathRecord::issue(KEY, 2, 2, NodeId(3));
        assert_eq!(
            validate_path(&[r0, r2], KEY),
            Err(PathValidationError::BrokenChain { expected_hop: 1 })
        );
    }

    #[test]
    fn mixed_connections_detected() {
        let r0 = PathRecord::issue(KEY, 2, 0, NodeId(1));
        let other = PathRecord::issue(KEY, 3, 1, NodeId(2));
        assert_eq!(
            validate_path(&[r0, other], KEY),
            Err(PathValidationError::MixedConnections)
        );
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(validate_path(&[], KEY), Err(PathValidationError::Empty));
    }

    #[test]
    fn wrong_bundle_key_rejected() {
        let records = vec![PathRecord::issue(KEY, 2, 0, NodeId(1))];
        assert!(matches!(
            validate_path(&records, b"another key"),
            Err(PathValidationError::BadMac { .. })
        ));
    }

    #[test]
    fn node_on_two_positions_validates() {
        // The paper allows a node to occupy two positions on one path.
        let records = vec![
            PathRecord::issue(KEY, 0, 0, NodeId(5)),
            PathRecord::issue(KEY, 0, 1, NodeId(7)),
            PathRecord::issue(KEY, 0, 2, NodeId(5)),
        ];
        let path = validate_path(&records, KEY).unwrap();
        assert_eq!(path, vec![NodeId(5), NodeId(7), NodeId(5)]);
    }
}
