//! Edge quality (§2.3, extended with the adaptive reputation term).
//!
//! `q(s, v) = w_s·σ(s, v) + w_a·α(v)` with `w_s + w_a = 1`: a convex
//! combination of *selectivity* (how consistently the edge was used on the
//! bundle's earlier connections) and *availability* (the probing-estimated
//! session-time share of the neighbor). "The edge quality of the last edge
//! in the path π^k is always 1 because it ends in R." Path quality is the
//! sum of its edge qualities.
//!
//! The adaptive fault-response layer generalises this to
//! `q = w_s·σ + w_a·α + w_r·ρ`, where `ρ ∈ [0, 1]` is the initiator's
//! observed reputation of the candidate ([`crate::reputation`]). `w_r = 0`
//! reproduces the paper's two-term model *bit-identically*: the two-term
//! expression is evaluated unchanged and the reputation product is never
//! formed, so fingerprint-pinned baselines are unaffected.

/// The weights `(w_s, w_a, w_r)` of selectivity, availability, and
/// reputation. `w_r` defaults to 0 (the paper's two-term model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    ws: f64,
    wa: f64,
    wr: f64,
}

impl Weights {
    /// Creates two-term weights (`w_r = 0`); they must be non-negative and
    /// sum to 1.
    #[must_use]
    pub fn new(ws: f64, wa: f64) -> Self {
        assert!(
            ws >= 0.0 && wa >= 0.0 && (ws + wa - 1.0).abs() < 1e-9,
            "weights must be non-negative and sum to 1, got ({ws}, {wa})"
        );
        Weights { ws, wa, wr: 0.0 }
    }

    /// Creates three-term weights including the reputation weight `w_r`;
    /// all must be non-negative and sum to 1.
    #[must_use]
    pub fn with_reputation(ws: f64, wa: f64, wr: f64) -> Self {
        assert!(
            ws >= 0.0 && wa >= 0.0 && wr >= 0.0 && (ws + wa + wr - 1.0).abs() < 1e-9,
            "weights must be non-negative and sum to 1, got ({ws}, {wa}, {wr})"
        );
        Weights { ws, wa, wr }
    }

    /// The paper's default `w_s = w_a = 0.5`.
    #[must_use]
    pub fn balanced() -> Self {
        Weights {
            ws: 0.5,
            wa: 0.5,
            wr: 0.0,
        }
    }

    /// Selectivity weight `w_s`.
    #[must_use]
    pub fn ws(&self) -> f64 {
        self.ws
    }

    /// Availability weight `w_a`.
    #[must_use]
    pub fn wa(&self) -> f64 {
        self.wa
    }

    /// Reputation weight `w_r` (0 in the paper's two-term model).
    #[must_use]
    pub fn wr(&self) -> f64 {
        self.wr
    }
}

/// Edge-quality computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeQuality {
    weights: Weights,
}

impl EdgeQuality {
    /// Creates the evaluator with the given weights.
    #[must_use]
    pub fn new(weights: Weights) -> Self {
        EdgeQuality { weights }
    }

    /// The weights in use.
    #[must_use]
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// Whether the reputation term is active (`w_r > 0`). Callers use this
    /// to skip the reputation lookup entirely in the two-term model, which
    /// keeps `w_r = 0` runs bit-identical to the pre-reputation build.
    #[must_use]
    pub fn uses_reputation(&self) -> bool {
        self.weights.wr > 0.0
    }

    /// `q = w_s·σ + w_a·α`. Inputs must already be in `[0, 1]`.
    #[must_use]
    pub fn edge(&self, selectivity: f64, availability: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&selectivity), "σ={selectivity}");
        debug_assert!((0.0..=1.0).contains(&availability), "α={availability}");
        self.weights.ws * selectivity + self.weights.wa * availability
    }

    /// `q = w_s·σ + w_a·α + w_r·ρ`. The two-term part is the exact
    /// expression [`EdgeQuality::edge`] evaluates (same operation order),
    /// so at `w_r = 0` the caller can branch to `edge` and get the same
    /// bits without ever reading ρ.
    #[must_use]
    pub fn edge_with_reputation(
        &self,
        selectivity: f64,
        availability: f64,
        reputation: f64,
    ) -> f64 {
        debug_assert!((0.0..=1.0).contains(&reputation), "ρ={reputation}");
        self.edge(selectivity, availability) + self.weights.wr * reputation
    }

    /// The fixed quality of the final edge into the responder.
    #[must_use]
    pub fn responder_edge(&self) -> f64 {
        1.0
    }

    /// Path quality: the sum of edge qualities (§2.3). The caller passes
    /// the qualities of the forwarder-to-forwarder edges; the final edge
    /// into R contributes its fixed 1.
    #[must_use]
    pub fn path(&self, interior_edge_qualities: &[f64]) -> f64 {
        interior_edge_qualities.iter().sum::<f64>() + self.responder_edge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_weights() {
        let w = Weights::balanced();
        assert_eq!(w.ws(), 0.5);
        assert_eq!(w.wa(), 0.5);
    }

    #[test]
    fn quality_is_convex_combination() {
        let q = EdgeQuality::new(Weights::balanced());
        assert_eq!(q.edge(1.0, 0.0), 0.5);
        assert_eq!(q.edge(0.0, 1.0), 0.5);
        assert_eq!(q.edge(1.0, 1.0), 1.0);
        assert_eq!(q.edge(0.0, 0.0), 0.0);
    }

    #[test]
    fn skewed_weights_prioritise_their_component() {
        let history_heavy = EdgeQuality::new(Weights::new(0.9, 0.1));
        let avail_heavy = EdgeQuality::new(Weights::new(0.1, 0.9));
        // A historically used but flaky edge vs a fresh highly available one.
        let used_flaky = (1.0, 0.2);
        let fresh_stable = (0.0, 0.9);
        assert!(
            history_heavy.edge(used_flaky.0, used_flaky.1)
                > history_heavy.edge(fresh_stable.0, fresh_stable.1)
        );
        assert!(
            avail_heavy.edge(used_flaky.0, used_flaky.1)
                < avail_heavy.edge(fresh_stable.0, fresh_stable.1)
        );
    }

    #[test]
    fn quality_bounded_in_unit_interval() {
        let q = EdgeQuality::new(Weights::new(0.3, 0.7));
        for s in [0.0, 0.25, 0.5, 1.0] {
            for a in [0.0, 0.25, 0.5, 1.0] {
                let v = q.edge(s, a);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn path_quality_sums_edges_plus_responder() {
        let q = EdgeQuality::new(Weights::balanced());
        assert_eq!(q.path(&[]), 1.0); // direct I -> f -> R degenerate
        assert!((q.path(&[0.5, 0.25]) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn responder_edge_is_always_one() {
        for (ws, wa) in [(0.0, 1.0), (1.0, 0.0), (0.5, 0.5)] {
            assert_eq!(EdgeQuality::new(Weights::new(ws, wa)).responder_edge(), 1.0);
        }
    }

    #[test]
    fn reputation_term_extends_the_convex_combination() {
        let q = EdgeQuality::new(Weights::with_reputation(0.4, 0.4, 0.2));
        assert!(q.uses_reputation());
        assert!((q.edge_with_reputation(1.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
        // ρ = 0 strips the whole reputation share from the score.
        assert!((q.edge_with_reputation(0.5, 0.5, 0.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_reputation_weight_is_bitwise_the_two_term_model() {
        let two = EdgeQuality::new(Weights::new(0.3, 0.7));
        let three = EdgeQuality::new(Weights::with_reputation(0.3, 0.7, 0.0));
        assert!(!three.uses_reputation());
        for s in [0.0, 0.33, 0.71, 1.0] {
            for a in [0.0, 0.25, 0.9, 1.0] {
                assert_eq!(two.edge(s, a).to_bits(), three.edge(s, a).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        let _ = Weights::new(0.5, 0.6);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn three_term_weights_must_sum_to_one() {
        let _ = Weights::with_reputation(0.5, 0.5, 0.2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn negative_weights_rejected() {
        let _ = Weights::new(-0.5, 1.5);
    }
}
