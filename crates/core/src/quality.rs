//! Edge quality (§2.3).
//!
//! `q(s, v) = w_s·σ(s, v) + w_a·α(v)` with `w_s + w_a = 1`: a convex
//! combination of *selectivity* (how consistently the edge was used on the
//! bundle's earlier connections) and *availability* (the probing-estimated
//! session-time share of the neighbor). "The edge quality of the last edge
//! in the path π^k is always 1 because it ends in R." Path quality is the
//! sum of its edge qualities.

/// The weights `(w_s, w_a)` of selectivity and availability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    ws: f64,
    wa: f64,
}

impl Weights {
    /// Creates weights; they must be non-negative and sum to 1.
    #[must_use]
    pub fn new(ws: f64, wa: f64) -> Self {
        assert!(
            ws >= 0.0 && wa >= 0.0 && (ws + wa - 1.0).abs() < 1e-9,
            "weights must be non-negative and sum to 1, got ({ws}, {wa})"
        );
        Weights { ws, wa }
    }

    /// The paper's default `w_s = w_a = 0.5`.
    #[must_use]
    pub fn balanced() -> Self {
        Weights { ws: 0.5, wa: 0.5 }
    }

    /// Selectivity weight `w_s`.
    #[must_use]
    pub fn ws(&self) -> f64 {
        self.ws
    }

    /// Availability weight `w_a`.
    #[must_use]
    pub fn wa(&self) -> f64 {
        self.wa
    }
}

/// Edge-quality computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeQuality {
    weights: Weights,
}

impl EdgeQuality {
    /// Creates the evaluator with the given weights.
    #[must_use]
    pub fn new(weights: Weights) -> Self {
        EdgeQuality { weights }
    }

    /// The weights in use.
    #[must_use]
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// `q = w_s·σ + w_a·α`. Inputs must already be in `[0, 1]`.
    #[must_use]
    pub fn edge(&self, selectivity: f64, availability: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&selectivity), "σ={selectivity}");
        debug_assert!((0.0..=1.0).contains(&availability), "α={availability}");
        self.weights.ws * selectivity + self.weights.wa * availability
    }

    /// The fixed quality of the final edge into the responder.
    #[must_use]
    pub fn responder_edge(&self) -> f64 {
        1.0
    }

    /// Path quality: the sum of edge qualities (§2.3). The caller passes
    /// the qualities of the forwarder-to-forwarder edges; the final edge
    /// into R contributes its fixed 1.
    #[must_use]
    pub fn path(&self, interior_edge_qualities: &[f64]) -> f64 {
        interior_edge_qualities.iter().sum::<f64>() + self.responder_edge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_weights() {
        let w = Weights::balanced();
        assert_eq!(w.ws(), 0.5);
        assert_eq!(w.wa(), 0.5);
    }

    #[test]
    fn quality_is_convex_combination() {
        let q = EdgeQuality::new(Weights::balanced());
        assert_eq!(q.edge(1.0, 0.0), 0.5);
        assert_eq!(q.edge(0.0, 1.0), 0.5);
        assert_eq!(q.edge(1.0, 1.0), 1.0);
        assert_eq!(q.edge(0.0, 0.0), 0.0);
    }

    #[test]
    fn skewed_weights_prioritise_their_component() {
        let history_heavy = EdgeQuality::new(Weights::new(0.9, 0.1));
        let avail_heavy = EdgeQuality::new(Weights::new(0.1, 0.9));
        // A historically used but flaky edge vs a fresh highly available one.
        let used_flaky = (1.0, 0.2);
        let fresh_stable = (0.0, 0.9);
        assert!(
            history_heavy.edge(used_flaky.0, used_flaky.1)
                > history_heavy.edge(fresh_stable.0, fresh_stable.1)
        );
        assert!(
            avail_heavy.edge(used_flaky.0, used_flaky.1)
                < avail_heavy.edge(fresh_stable.0, fresh_stable.1)
        );
    }

    #[test]
    fn quality_bounded_in_unit_interval() {
        let q = EdgeQuality::new(Weights::new(0.3, 0.7));
        for s in [0.0, 0.25, 0.5, 1.0] {
            for a in [0.0, 0.25, 0.5, 1.0] {
                let v = q.edge(s, a);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn path_quality_sums_edges_plus_responder() {
        let q = EdgeQuality::new(Weights::balanced());
        assert_eq!(q.path(&[]), 1.0); // direct I -> f -> R degenerate
        assert!((q.path(&[0.5, 0.25]) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn responder_edge_is_always_one() {
        for (ws, wa) in [(0.0, 1.0), (1.0, 0.0), (0.5, 0.5)] {
            assert_eq!(EdgeQuality::new(Weights::new(ws, wa)).responder_edge(), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        let _ = Weights::new(0.5, 0.6);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn negative_weights_rejected() {
        let _ = Weights::new(-0.5, 1.5);
    }
}
