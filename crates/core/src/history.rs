//! Connection history profiles (§2.3, Table 1).
//!
//! "Each node stores history information about connections passing through
//! it. Thus if a node s lies on a path π^i with connection identifier cid,
//! it stores the corresponding predecessor and successor hops. ... The
//! ratio of the number of entries corresponding to (s, v) and the maximum
//! possible entries (k − 1) is called its selectivity."
//!
//! Records are keyed by bundle so that selectivity for connection `k` of a
//! bundle looks only at that bundle's earlier connections, and the
//! predecessor is stored so a node occupying two positions on one path can
//! distinguish its outgoing edges per position.

use std::collections::HashMap;

use idpa_overlay::NodeId;

use crate::bundle::BundleId;

/// One history record — the paper's Table 1 row, extended with the bundle
/// and connection index that scope it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryRecord {
    /// The bundle (set of recurring connections) the path belonged to.
    pub bundle: BundleId,
    /// Connection index within the bundle (`π^i`).
    pub connection: u32,
    /// Predecessor hop (the paper's "Predecessor" column).
    pub predecessor: NodeId,
    /// Successor hop (the paper's "Successor" column).
    pub successor: NodeId,
}

/// A multiset of connection indices, kept sorted with per-index
/// reference counts.
///
/// This is the selectivity index's leaf: for one `(bundle, successor)` (or
/// `(bundle, predecessor, successor)`) key it answers "on how many
/// *distinct* prior connections did this edge appear?" without scanning
/// records. The refcount absorbs duplicate records on one connection (a
/// node occupying two positions on a path) so eviction of one duplicate
/// does not lose the connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ConnCounter {
    /// `(connection, records carrying it)`, sorted by connection.
    entries: Vec<(u32, u32)>,
}

impl ConnCounter {
    /// Registers one record for `conn`.
    pub(crate) fn add(&mut self, conn: u32) {
        match self.entries.binary_search_by_key(&conn, |&(c, _)| c) {
            Ok(i) => self.entries[i].1 += 1,
            // Records almost always arrive in connection order, so the
            // insertion point is almost always the end: O(1) amortised.
            Err(i) => self.entries.insert(i, (conn, 1)),
        }
    }

    /// Unregisters one record for `conn` (eviction).
    pub(crate) fn remove(&mut self, conn: u32) {
        if let Ok(i) = self.entries.binary_search_by_key(&conn, |&(c, _)| c) {
            self.entries[i].1 -= 1;
            if self.entries[i].1 == 0 {
                self.entries.remove(i);
            }
        }
    }

    /// Number of distinct connections `< priors` — O(1) on the hot path
    /// (every retained connection is a prior), O(log n) otherwise.
    pub(crate) fn distinct_below(&self, priors: u32) -> usize {
        match self.entries.last() {
            None => 0,
            Some(&(last, _)) if last < priors => self.entries.len(),
            _ => self.entries.partition_point(|&(c, _)| c < priors),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Read access to bundle-scoped selectivity state, abstracted over the
/// storage layout.
///
/// The routing layer never cares *where* a node's Table 1 records live —
/// only what `σ(s, v)` they imply. Implementations exist for the classic
/// global layout (`[HistoryProfile]` / `Vec<HistoryProfile>`, indexed by
/// `NodeId`), for the sharded [`crate::arena::HistoryArena`] views, and for
/// the worker-local [`crate::arena::BundleMirror`]. All implementations
/// must return bit-identical values for identical record sets — the arena
/// property suite pins this.
pub trait HistoryRead {
    /// Selectivity `σ(s, v)` of node `s` toward `v` after `priors`
    /// completed connections of `bundle` — see
    /// [`HistoryProfile::selectivity`].
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64;

    /// Position-aware selectivity restricted to records whose predecessor
    /// matches — see [`HistoryProfile::selectivity_from`].
    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64;
}

/// Write access to history storage: commit one Table 1 record for `node`.
///
/// Mirrors [`HistoryProfile::record`] (including the per-bundle retention
/// bound, which is a property of the storage, not of the caller).
pub trait HistoryWrite {
    /// Records that on connection `connection` of `bundle`, `node` received
    /// from `predecessor` and forwarded to `successor`.
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    );
}

impl HistoryRead for [HistoryProfile] {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        self[s.index()].selectivity(bundle, priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        self[s.index()].selectivity_from(bundle, priors, predecessor, v)
    }
}

impl HistoryWrite for [HistoryProfile] {
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        self[node.index()].record(bundle, connection, predecessor, successor);
    }
}

impl HistoryRead for Vec<HistoryProfile> {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        self.as_slice().selectivity_at(s, bundle, priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        self.as_slice()
            .selectivity_from_at(s, bundle, priors, predecessor, v)
    }
}

impl HistoryWrite for Vec<HistoryProfile> {
    fn record_hop(
        &mut self,
        node: NodeId,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        self.as_mut_slice()
            .record_hop(node, bundle, connection, predecessor, successor);
    }
}

/// Per-bundle history: the retained records plus the incremental
/// selectivity indexes maintained alongside them.
#[derive(Debug, Clone, Default)]
struct BundleHistory {
    /// Retained records in insertion (connection) order.
    records: Vec<HistoryRecord>,
    /// `successor -> distinct prior connections` (drives `selectivity`).
    by_succ: HashMap<NodeId, ConnCounter>,
    /// `(predecessor, successor) -> distinct prior connections` (drives
    /// `selectivity_from`).
    by_pred_succ: HashMap<(NodeId, NodeId), ConnCounter>,
}

impl BundleHistory {
    fn push(&mut self, record: HistoryRecord) {
        self.by_succ
            .entry(record.successor)
            .or_default()
            .add(record.connection);
        self.by_pred_succ
            .entry((record.predecessor, record.successor))
            .or_default()
            .add(record.connection);
        self.records.push(record);
    }

    /// Evicts the `n` oldest records, unwinding the indexes.
    fn evict_oldest(&mut self, n: usize) {
        for record in self.records.drain(..n) {
            if let Some(counter) = self.by_succ.get_mut(&record.successor) {
                counter.remove(record.connection);
                if counter.is_empty() {
                    self.by_succ.remove(&record.successor);
                }
            }
            let key = (record.predecessor, record.successor);
            if let Some(counter) = self.by_pred_succ.get_mut(&key) {
                counter.remove(record.connection);
                if counter.is_empty() {
                    self.by_pred_succ.remove(&key);
                }
            }
        }
    }
}

/// A node's history profile `H^k(s)`, with an optional retention bound.
///
/// Selectivity queries sit on the per-hop critical path of every
/// transmission (each candidate neighbor is scored with `σ(s, v)`), so the
/// profile maintains incremental per-`(bundle, successor)` and
/// per-`(bundle, predecessor, successor)` connection-count indexes in
/// [`HistoryProfile::record`]: `selectivity`/`selectivity_from` are O(1)
/// lookups instead of O(records) scans with a per-call `HashSet`
/// allocation. [`HistoryProfile::selectivity_rescan`] keeps the naive scan
/// as the reference oracle (property tests assert agreement under random
/// record/evict sequences; the bench harness uses it as the baseline).
#[derive(Debug, Clone)]
pub struct HistoryProfile {
    owner: NodeId,
    /// Per-bundle records and indexes.
    records: HashMap<BundleId, BundleHistory>,
    /// Maximum records retained per bundle (`None` = unbounded). The paper
    /// notes "the amount of history information stored at a node also
    /// influences the quality of the edge" — this is the ablation knob.
    capacity_per_bundle: Option<usize>,
}

impl HistoryProfile {
    /// Unbounded history for `owner`.
    #[must_use]
    pub fn new(owner: NodeId) -> Self {
        HistoryProfile {
            owner,
            records: HashMap::new(),
            capacity_per_bundle: None,
        }
    }

    /// History bounded to the most recent `capacity` records per bundle.
    #[must_use]
    pub fn with_capacity(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        HistoryProfile {
            owner,
            records: HashMap::new(),
            capacity_per_bundle: Some(capacity),
        }
    }

    /// The owning node.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Records a hop: on connection `connection` of `bundle`, the owner
    /// received from `predecessor` and forwarded to `successor`.
    pub fn record(
        &mut self,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        let entry = self.records.entry(bundle).or_default();
        entry.push(HistoryRecord {
            bundle,
            connection,
            predecessor,
            successor,
        });
        if let Some(cap) = self.capacity_per_bundle {
            if entry.records.len() > cap {
                let drop = entry.records.len() - cap;
                entry.evict_oldest(drop);
            }
        }
    }

    /// All retained records for a bundle (insertion order).
    #[must_use]
    pub fn bundle_records(&self, bundle: BundleId) -> &[HistoryRecord] {
        self.records
            .get(&bundle)
            .map_or(&[], |b| b.records.as_slice())
    }

    /// Selectivity `σ(s, v)` when forming a new connection after `priors`
    /// completed connections of `bundle`: the number of those prior
    /// connections on which the owner forwarded to `v`, divided by the
    /// maximum possible `priors`.
    ///
    /// In the paper's 1-based notation this is the σ used while forming
    /// `π^k` with `priors = k − 1`. Zero-based connection indices
    /// `0..priors` are the priors. Multiple appearances of the edge on one
    /// prior connection (a node occupying two positions) count once — the
    /// numerator counts *connections*, matching the denominator.
    #[must_use]
    pub fn selectivity(&self, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let Some(entry) = self.records.get(&bundle) else {
            return 0.0;
        };
        let count = entry
            .by_succ
            .get(&v)
            .map_or(0, |c| c.distinct_below(priors));
        count as f64 / f64::from(priors)
    }

    /// Reference implementation of [`HistoryProfile::selectivity`] by
    /// full rescan of the retained records — the pre-index O(records)
    /// algorithm, kept as the oracle for property tests and as the
    /// benchmark baseline for the indexed fast path.
    #[must_use]
    pub fn selectivity_rescan(&self, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        for r in self.bundle_records(bundle) {
            if r.connection < priors && r.successor == v {
                seen.insert(r.connection);
            }
        }
        seen.len() as f64 / f64::from(priors)
    }

    /// Position-aware selectivity: like [`HistoryProfile::selectivity`] but
    /// restricted to records whose predecessor matches — "by using the
    /// predecessor information, a node can differentiate between outgoing
    /// edges for two different positions on the same path".
    #[must_use]
    pub fn selectivity_from(
        &self,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let Some(entry) = self.records.get(&bundle) else {
            return 0.0;
        };
        let count = entry
            .by_pred_succ
            .get(&(predecessor, v))
            .map_or(0, |c| c.distinct_below(priors));
        count as f64 / f64::from(priors)
    }

    /// Reference implementation of [`HistoryProfile::selectivity_from`] by
    /// full rescan — see [`HistoryProfile::selectivity_rescan`].
    #[must_use]
    pub fn selectivity_from_rescan(
        &self,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        for r in self.bundle_records(bundle) {
            if r.connection < priors && r.successor == v && r.predecessor == predecessor {
                seen.insert(r.connection);
            }
        }
        seen.len() as f64 / f64::from(priors)
    }

    /// Total records retained (all bundles).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.values().map(|b| b.records.len()).sum()
    }

    /// Whether no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }
    const B: BundleId = BundleId(7);

    #[test]
    fn empty_profile_has_zero_selectivity() {
        let h = HistoryProfile::new(n(0));
        assert_eq!(h.selectivity(B, 5, n(1)), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn selectivity_counts_prior_connections() {
        let mut h = HistoryProfile::new(n(0));
        // Owner forwarded to node 1 on connections 0 and 2, to node 2 on 1.
        h.record(B, 0, n(9), n(1));
        h.record(B, 1, n(9), n(2));
        h.record(B, 2, n(9), n(1));
        // Forming the 4th connection, priors = 3: edge (s,1) appeared on
        // prior connections {0, 2} => 2/3; edge (s,2) on {1} => 1/3.
        assert!((h.selectivity(B, 3, n(1)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.selectivity(B, 3, n(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn selectivity_is_one_for_always_chosen_edge() {
        let mut h = HistoryProfile::new(n(0));
        for c in 0..4 {
            h.record(B, c, n(9), n(1));
        }
        // All 4 prior connections used (s,1) => σ = 4/4 = 1.
        assert_eq!(h.selectivity(B, 4, n(1)), 1.0);
    }

    #[test]
    fn duplicate_edge_on_one_connection_counts_once() {
        let mut h = HistoryProfile::new(n(0));
        // Node occupies two positions on connection 0, forwarding to n1
        // both times.
        h.record(B, 0, n(8), n(1));
        h.record(B, 0, n(9), n(1));
        assert_eq!(h.selectivity(B, 1, n(1)), 1.0);
    }

    #[test]
    fn position_aware_selectivity_distinguishes_predecessors() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 0, n(8), n(1)); // position A forwards to 1
        h.record(B, 0, n(9), n(2)); // position B forwards to 2
        assert_eq!(h.selectivity_from(B, 1, n(8), n(1)), 1.0);
        assert_eq!(h.selectivity_from(B, 1, n(8), n(2)), 0.0);
        assert_eq!(h.selectivity_from(B, 1, n(9), n(2)), 1.0);
    }

    #[test]
    fn selectivity_scoped_per_bundle() {
        let mut h = HistoryProfile::new(n(0));
        h.record(BundleId(1), 0, n(9), n(1));
        assert_eq!(h.selectivity(BundleId(2), 2, n(1)), 0.0);
    }

    #[test]
    fn future_connections_do_not_count() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 5, n(9), n(1)); // a later connection
        assert_eq!(h.selectivity(B, 3, n(1)), 0.0);
    }

    #[test]
    fn zero_priors_has_no_history() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 0, n(9), n(1));
        assert_eq!(h.selectivity(B, 0, n(1)), 0.0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut h = HistoryProfile::with_capacity(n(0), 2);
        h.record(B, 0, n(9), n(1));
        h.record(B, 1, n(9), n(2));
        h.record(B, 2, n(9), n(3));
        assert_eq!(h.bundle_records(B).len(), 2);
        // The record for connection 0 was evicted.
        assert_eq!(h.selectivity(B, 3, n(1)), 0.0);
        assert!((h.selectivity(B, 3, n(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    /// The tentpole's safety net: under random record sequences (with
    /// duplicates, out-of-order connections, and capacity eviction) the
    /// incremental index must agree exactly with a naive recount of the
    /// retained records, for every (priors, predecessor, successor) probe.
    #[test]
    fn index_agrees_with_rescan_under_random_sequences() {
        use idpa_desim::rng::Xoshiro256StarStar;
        use rand::RngExt;

        let mut rng = Xoshiro256StarStar::seed_from_u64(0xA11CE);
        for case in 0..300 {
            let capacity = match case % 3 {
                0 => None,
                1 => Some(1 + rng.random_range(0..4usize)),
                _ => Some(1 + rng.random_range(0..12usize)),
            };
            let mut h = match capacity {
                Some(cap) => HistoryProfile::with_capacity(n(0), cap),
                None => HistoryProfile::new(n(0)),
            };
            let ops = rng.random_range(1..40usize);
            for _ in 0..ops {
                let bundle = BundleId(rng.random_range(0..3u64));
                // Mostly monotone connections with occasional out-of-order
                // and duplicate indices.
                let conn = rng.random_range(0..12u32);
                let pred = n(rng.random_range(0..4usize));
                let succ = n(rng.random_range(0..5usize));
                h.record(bundle, conn, pred, succ);
            }
            for bundle in (0..3).map(BundleId) {
                for priors in 0..14u32 {
                    for v in (0..5).map(n) {
                        assert_eq!(
                            h.selectivity(bundle, priors, v).to_bits(),
                            h.selectivity_rescan(bundle, priors, v).to_bits(),
                            "case {case}: selectivity({bundle:?}, {priors}, {v:?})"
                        );
                        for pred in (0..4).map(n) {
                            assert_eq!(
                                h.selectivity_from(bundle, priors, pred, v).to_bits(),
                                h.selectivity_from_rescan(bundle, priors, pred, v).to_bits(),
                                "case {case}: selectivity_from({bundle:?}, {priors}, {pred:?}, {v:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rescan_matches_index_on_basic_profile() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 0, n(9), n(1));
        h.record(B, 1, n(9), n(2));
        h.record(B, 2, n(9), n(1));
        assert_eq!(h.selectivity(B, 3, n(1)), h.selectivity_rescan(B, 3, n(1)));
        assert_eq!(
            h.selectivity_from(B, 3, n(9), n(2)),
            h.selectivity_from_rescan(B, 3, n(9), n(2))
        );
    }

    #[test]
    fn eviction_of_one_duplicate_keeps_the_connection_counted() {
        // Two records on connection 0 both forward to node 1; evicting one
        // of them (capacity 1) must keep σ = 1 because a record for the
        // connection remains.
        let mut h = HistoryProfile::with_capacity(n(0), 1);
        h.record(B, 0, n(8), n(1));
        h.record(B, 0, n(9), n(1));
        assert_eq!(h.bundle_records(B).len(), 1);
        assert_eq!(h.selectivity(B, 1, n(1)), 1.0);
        // The predecessor-scoped view lost the evicted position, kept the
        // surviving one.
        assert_eq!(h.selectivity_from(B, 1, n(8), n(1)), 0.0);
        assert_eq!(h.selectivity_from(B, 1, n(9), n(1)), 1.0);
    }

    #[test]
    fn bounded_history_lowers_selectivity() {
        // The ablation the paper hints at: less retained history => lower
        // measured selectivity for long-running bundles.
        let mut unbounded = HistoryProfile::new(n(0));
        let mut bounded = HistoryProfile::with_capacity(n(0), 3);
        for c in 0..10 {
            unbounded.record(B, c, n(9), n(1));
            bounded.record(B, c, n(9), n(1));
        }
        assert!(bounded.selectivity(B, 10, n(1)) < unbounded.selectivity(B, 10, n(1)));
    }
}
