//! Connection history profiles (§2.3, Table 1).
//!
//! "Each node stores history information about connections passing through
//! it. Thus if a node s lies on a path π^i with connection identifier cid,
//! it stores the corresponding predecessor and successor hops. ... The
//! ratio of the number of entries corresponding to (s, v) and the maximum
//! possible entries (k − 1) is called its selectivity."
//!
//! Records are keyed by bundle so that selectivity for connection `k` of a
//! bundle looks only at that bundle's earlier connections, and the
//! predecessor is stored so a node occupying two positions on one path can
//! distinguish its outgoing edges per position.

use std::collections::HashMap;

use idpa_overlay::NodeId;

use crate::bundle::BundleId;

/// One history record — the paper's Table 1 row, extended with the bundle
/// and connection index that scope it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryRecord {
    /// The bundle (set of recurring connections) the path belonged to.
    pub bundle: BundleId,
    /// Connection index within the bundle (`π^i`).
    pub connection: u32,
    /// Predecessor hop (the paper's "Predecessor" column).
    pub predecessor: NodeId,
    /// Successor hop (the paper's "Successor" column).
    pub successor: NodeId,
}

/// A node's history profile `H^k(s)`, with an optional retention bound.
#[derive(Debug, Clone)]
pub struct HistoryProfile {
    owner: NodeId,
    /// Records grouped by bundle, in insertion (connection) order.
    records: HashMap<BundleId, Vec<HistoryRecord>>,
    /// Maximum records retained per bundle (`None` = unbounded). The paper
    /// notes "the amount of history information stored at a node also
    /// influences the quality of the edge" — this is the ablation knob.
    capacity_per_bundle: Option<usize>,
}

impl HistoryProfile {
    /// Unbounded history for `owner`.
    #[must_use]
    pub fn new(owner: NodeId) -> Self {
        HistoryProfile {
            owner,
            records: HashMap::new(),
            capacity_per_bundle: None,
        }
    }

    /// History bounded to the most recent `capacity` records per bundle.
    #[must_use]
    pub fn with_capacity(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        HistoryProfile {
            owner,
            records: HashMap::new(),
            capacity_per_bundle: Some(capacity),
        }
    }

    /// The owning node.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Records a hop: on connection `connection` of `bundle`, the owner
    /// received from `predecessor` and forwarded to `successor`.
    pub fn record(
        &mut self,
        bundle: BundleId,
        connection: u32,
        predecessor: NodeId,
        successor: NodeId,
    ) {
        let entry = self.records.entry(bundle).or_default();
        entry.push(HistoryRecord {
            bundle,
            connection,
            predecessor,
            successor,
        });
        if let Some(cap) = self.capacity_per_bundle {
            if entry.len() > cap {
                let drop = entry.len() - cap;
                entry.drain(..drop);
            }
        }
    }

    /// All retained records for a bundle (insertion order).
    #[must_use]
    pub fn bundle_records(&self, bundle: BundleId) -> &[HistoryRecord] {
        self.records.get(&bundle).map_or(&[], Vec::as_slice)
    }

    /// Selectivity `σ(s, v)` when forming a new connection after `priors`
    /// completed connections of `bundle`: the number of those prior
    /// connections on which the owner forwarded to `v`, divided by the
    /// maximum possible `priors`.
    ///
    /// In the paper's 1-based notation this is the σ used while forming
    /// `π^k` with `priors = k − 1`. Zero-based connection indices
    /// `0..priors` are the priors. Multiple appearances of the edge on one
    /// prior connection (a node occupying two positions) count once — the
    /// numerator counts *connections*, matching the denominator.
    #[must_use]
    pub fn selectivity(&self, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let Some(records) = self.records.get(&bundle) else {
            return 0.0;
        };
        let mut seen = std::collections::HashSet::new();
        for r in records {
            if r.connection < priors && r.successor == v {
                seen.insert(r.connection);
            }
        }
        seen.len() as f64 / f64::from(priors)
    }

    /// Position-aware selectivity: like [`HistoryProfile::selectivity`] but
    /// restricted to records whose predecessor matches — "by using the
    /// predecessor information, a node can differentiate between outgoing
    /// edges for two different positions on the same path".
    #[must_use]
    pub fn selectivity_from(
        &self,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        if priors == 0 {
            return 0.0;
        }
        let Some(records) = self.records.get(&bundle) else {
            return 0.0;
        };
        let mut seen = std::collections::HashSet::new();
        for r in records {
            if r.connection < priors && r.successor == v && r.predecessor == predecessor {
                seen.insert(r.connection);
            }
        }
        seen.len() as f64 / f64::from(priors)
    }

    /// Total records retained (all bundles).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Whether no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }
    const B: BundleId = BundleId(7);

    #[test]
    fn empty_profile_has_zero_selectivity() {
        let h = HistoryProfile::new(n(0));
        assert_eq!(h.selectivity(B, 5, n(1)), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn selectivity_counts_prior_connections() {
        let mut h = HistoryProfile::new(n(0));
        // Owner forwarded to node 1 on connections 0 and 2, to node 2 on 1.
        h.record(B, 0, n(9), n(1));
        h.record(B, 1, n(9), n(2));
        h.record(B, 2, n(9), n(1));
        // Forming the 4th connection, priors = 3: edge (s,1) appeared on
        // prior connections {0, 2} => 2/3; edge (s,2) on {1} => 1/3.
        assert!((h.selectivity(B, 3, n(1)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.selectivity(B, 3, n(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn selectivity_is_one_for_always_chosen_edge() {
        let mut h = HistoryProfile::new(n(0));
        for c in 0..4 {
            h.record(B, c, n(9), n(1));
        }
        // All 4 prior connections used (s,1) => σ = 4/4 = 1.
        assert_eq!(h.selectivity(B, 4, n(1)), 1.0);
    }

    #[test]
    fn duplicate_edge_on_one_connection_counts_once() {
        let mut h = HistoryProfile::new(n(0));
        // Node occupies two positions on connection 0, forwarding to n1
        // both times.
        h.record(B, 0, n(8), n(1));
        h.record(B, 0, n(9), n(1));
        assert_eq!(h.selectivity(B, 1, n(1)), 1.0);
    }

    #[test]
    fn position_aware_selectivity_distinguishes_predecessors() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 0, n(8), n(1)); // position A forwards to 1
        h.record(B, 0, n(9), n(2)); // position B forwards to 2
        assert_eq!(h.selectivity_from(B, 1, n(8), n(1)), 1.0);
        assert_eq!(h.selectivity_from(B, 1, n(8), n(2)), 0.0);
        assert_eq!(h.selectivity_from(B, 1, n(9), n(2)), 1.0);
    }

    #[test]
    fn selectivity_scoped_per_bundle() {
        let mut h = HistoryProfile::new(n(0));
        h.record(BundleId(1), 0, n(9), n(1));
        assert_eq!(h.selectivity(BundleId(2), 2, n(1)), 0.0);
    }

    #[test]
    fn future_connections_do_not_count() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 5, n(9), n(1)); // a later connection
        assert_eq!(h.selectivity(B, 3, n(1)), 0.0);
    }

    #[test]
    fn zero_priors_has_no_history() {
        let mut h = HistoryProfile::new(n(0));
        h.record(B, 0, n(9), n(1));
        assert_eq!(h.selectivity(B, 0, n(1)), 0.0);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut h = HistoryProfile::with_capacity(n(0), 2);
        h.record(B, 0, n(9), n(1));
        h.record(B, 1, n(9), n(2));
        h.record(B, 2, n(9), n(3));
        assert_eq!(h.bundle_records(B).len(), 2);
        // The record for connection 0 was evicted.
        assert_eq!(h.selectivity(B, 3, n(1)), 0.0);
        assert!((h.selectivity(B, 3, n(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_history_lowers_selectivity() {
        // The ablation the paper hints at: less retained history => lower
        // measured selectivity for long-running bundles.
        let mut unbounded = HistoryProfile::new(n(0));
        let mut bounded = HistoryProfile::with_capacity(n(0), 3);
        for c in 0..10 {
            unbounded.record(B, c, n(9), n(1));
            bounded.record(B, c, n(9), n(1));
        }
        assert!(
            bounded.selectivity(B, 10, n(1)) < unbounded.selectivity(B, 10, n(1))
        );
    }
}
