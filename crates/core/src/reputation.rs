//! Per-initiator edge reputation — the ρ term of the adaptive quality model.
//!
//! The paper's edge quality `q(s,v) = w_s·σ(s,v) + w_a·α(v)` (§3) folds
//! history and availability into next-hop choice, and §5 argues the payment
//! system must *tolerate* cheating, not merely detect it at settlement. This
//! module closes that loop: each initiator keeps a private ledger of what it
//! has *observed* going wrong through each relay — confirmed drops,
//! confirmation timeouts, and validator-flagged receipt corruption — and
//! exposes a reputation score `ρ(v) ∈ [0, 1]` that enters the quality model
//! as a third weighted term, `q = w_s·σ + w_a·α + w_r·ρ`
//! ([`crate::quality::Weights::with_reputation`]).
//!
//! The ledger is strictly per-initiator: reputations are *local
//! observations*, never gossiped, matching the paper's stance that each
//! peer estimates neighbor behavior from its own probes and receipts. All
//! updates are driven by deterministic simulation events, so adaptive runs
//! replay bit-identically from the master seed.

use idpa_overlay::NodeId;

/// Observed faults after which a relay is suppressed from path formation
/// (in addition to any validator cheat flag, which suppresses immediately).
pub const SUPPRESSION_FAULTS: u32 = 2;

/// The observations one initiator holds against a single relay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RelayFaults {
    drops: u32,
    timeouts: u32,
    flagged: bool,
}

/// One initiator's private fault ledger over all potential relays.
///
/// Scores decay harmonically with the observed fault count — one strike
/// halves the reputation, two strikes third it — and a validator cheat
/// flag zeroes it outright: receipt corruption is *attributed* misbehavior
/// (the §5 intact-prefix rule pins it on a specific forwarder), whereas a
/// drop or timeout could be the network's fault.
///
/// Storage is sparse: a relay with no recorded observation occupies no
/// memory (absent ≡ clean, ρ = 1), so a ledger's footprint scales with the
/// relays an initiator has actually seen misbehave, not with the network
/// size. Entries appear only on a recorded fault or flag, so equality over
/// the sparse map coincides with value equality of the dense ledger it
/// replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReputation {
    n_nodes: usize,
    observed: std::collections::HashMap<usize, RelayFaults>,
}

impl EdgeReputation {
    /// A clean ledger over `n_nodes` relays (everyone starts at ρ = 1).
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        EdgeReputation {
            n_nodes,
            observed: std::collections::HashMap::new(),
        }
    }

    fn get(&self, v: NodeId) -> RelayFaults {
        assert!(v.index() < self.n_nodes, "relay {v} out of range");
        self.observed.get(&v.index()).copied().unwrap_or_default()
    }

    fn get_mut(&mut self, v: NodeId) -> &mut RelayFaults {
        assert!(v.index() < self.n_nodes, "relay {v} out of range");
        self.observed.entry(v.index()).or_default()
    }

    /// Records a confirmed loss (crash or packet drop) through `v`.
    pub fn record_drop(&mut self, v: NodeId) {
        self.get_mut(v).drops += 1;
    }

    /// Records a confirmation timeout attributed to `v` (includes dropped
    /// confirmations — from the initiator's seat a swallowed confirmation
    /// is indistinguishable from a slow one).
    pub fn record_timeout(&mut self, v: NodeId) {
        self.get_mut(v).timeouts += 1;
    }

    /// Marks `v` as a validator-flagged cheater (receipt corruption pinned
    /// on `v` by the intact-prefix rule). Irrevocable within a run.
    pub fn flag_cheater(&mut self, v: NodeId) {
        self.get_mut(v).flagged = true;
    }

    /// Observed drop count for `v`.
    #[must_use]
    pub fn drops(&self, v: NodeId) -> u32 {
        self.get(v).drops
    }

    /// Observed timeout count for `v`.
    #[must_use]
    pub fn timeouts(&self, v: NodeId) -> u32 {
        self.get(v).timeouts
    }

    /// Total observed (non-cheat) faults through `v`.
    #[must_use]
    pub fn fault_count(&self, v: NodeId) -> u32 {
        let f = self.get(v);
        f.drops + f.timeouts
    }

    /// Whether the validator has pinned receipt corruption on `v`.
    #[must_use]
    pub fn is_flagged(&self, v: NodeId) -> bool {
        self.get(v).flagged
    }

    /// The reputation score ρ(v) ∈ [0, 1]: zero for flagged cheaters,
    /// otherwise `1 / (1 + faults)`.
    #[must_use]
    pub fn score(&self, v: NodeId) -> f64 {
        let f = self.get(v);
        if f.flagged {
            0.0
        } else {
            1.0 / (1.0 + f64::from(f.drops + f.timeouts))
        }
    }

    /// Whether `v` should be excluded from path formation outright:
    /// flagged cheaters immediately, repeat offenders after
    /// [`SUPPRESSION_FAULTS`] observed faults.
    #[must_use]
    pub fn is_suppressed(&self, v: NodeId) -> bool {
        let f = self.get(v);
        f.flagged || f.drops + f.timeouts >= SUPPRESSION_FAULTS
    }

    /// Number of relays with at least one observation or flag.
    #[must_use]
    pub fn observed_nodes(&self) -> usize {
        self.observed
            .values()
            .filter(|f| f.drops > 0 || f.timeouts > 0 || f.flagged)
            .count()
    }

    /// Approximate heap footprint of the ledger, in bytes (sparse entries
    /// only — a clean ledger reports zero).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.observed.capacity()
            * (std::mem::size_of::<RelayFaults>() + std::mem::size_of::<usize>())
    }

    /// Snapshot export: `(relay, drops, timeouts, flagged)` for every relay
    /// with a recorded entry, sorted by relay index — a pure function of the
    /// ledger's value, independent of hash-map iteration order.
    #[must_use]
    pub fn snapshot_entries(&self) -> Vec<(usize, u32, u32, bool)> {
        let mut entries: Vec<(usize, u32, u32, bool)> = self
            .observed
            .iter()
            .map(|(&v, f)| (v, f.drops, f.timeouts, f.flagged))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries
    }

    /// Rebuilds a ledger from a [`EdgeReputation::snapshot_entries`] export.
    /// Callers must have validated `v < n_nodes` for every entry (the
    /// snapshot decoder does). Entries are inserted one at a time into a
    /// fresh map, so the restored map's capacity — which feeds
    /// [`EdgeReputation::approx_bytes`] and through it the run's memory
    /// metrics — depends only on the distinct entry count, exactly as it
    /// did in the snapshotted run.
    #[must_use]
    pub fn from_snapshot(n_nodes: usize, entries: &[(usize, u32, u32, bool)]) -> Self {
        let mut rep = EdgeReputation::new(n_nodes);
        for &(v, drops, timeouts, flagged) in entries {
            rep.observed.insert(
                v,
                RelayFaults {
                    drops,
                    timeouts,
                    flagged,
                },
            );
        }
        rep
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    #[test]
    fn clean_ledger_scores_everyone_at_one() {
        let rep = EdgeReputation::new(4);
        for i in 0..4 {
            assert!((rep.score(NodeId(i)) - 1.0).abs() < f64::EPSILON);
            assert!(!rep.is_suppressed(NodeId(i)));
        }
        assert_eq!(rep.observed_nodes(), 0);
    }

    #[test]
    fn faults_decay_score_harmonically() {
        let mut rep = EdgeReputation::new(3);
        rep.record_drop(NodeId(1));
        assert!((rep.score(NodeId(1)) - 0.5).abs() < f64::EPSILON);
        assert!(!rep.is_suppressed(NodeId(1)), "one strike is not enough");
        rep.record_timeout(NodeId(1));
        assert!((rep.score(NodeId(1)) - 1.0 / 3.0).abs() < f64::EPSILON);
        assert!(rep.is_suppressed(NodeId(1)), "two strikes suppress");
        assert_eq!(rep.fault_count(NodeId(1)), 2);
        assert_eq!(rep.observed_nodes(), 1);
    }

    #[test]
    fn cheat_flag_zeroes_and_suppresses_immediately() {
        let mut rep = EdgeReputation::new(3);
        rep.flag_cheater(NodeId(2));
        assert_eq!(rep.score(NodeId(2)), 0.0);
        assert!(rep.is_suppressed(NodeId(2)));
        assert!(rep.is_flagged(NodeId(2)));
        assert_eq!(rep.fault_count(NodeId(2)), 0, "flags are not fault counts");
    }
}
