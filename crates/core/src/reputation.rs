//! Per-initiator edge reputation — the ρ term of the adaptive quality model.
//!
//! The paper's edge quality `q(s,v) = w_s·σ(s,v) + w_a·α(v)` (§3) folds
//! history and availability into next-hop choice, and §5 argues the payment
//! system must *tolerate* cheating, not merely detect it at settlement. This
//! module closes that loop: each initiator keeps a private ledger of what it
//! has *observed* going wrong through each relay — confirmed drops,
//! confirmation timeouts, and validator-flagged receipt corruption — and
//! exposes a reputation score `ρ(v) ∈ [0, 1]` that enters the quality model
//! as a third weighted term, `q = w_s·σ + w_a·α + w_r·ρ`
//! ([`crate::quality::Weights::with_reputation`]).
//!
//! The ledger is strictly per-initiator: reputations are *local
//! observations*, never gossiped, matching the paper's stance that each
//! peer estimates neighbor behavior from its own probes and receipts. All
//! updates are driven by deterministic simulation events, so adaptive runs
//! replay bit-identically from the master seed.

use idpa_overlay::NodeId;

/// Observed faults after which a relay is suppressed from path formation
/// (in addition to any validator cheat flag, which suppresses immediately).
pub const SUPPRESSION_FAULTS: u32 = 2;

/// The observations one initiator holds against a single relay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RelayFaults {
    drops: u32,
    timeouts: u32,
    flagged: bool,
}

/// Retired-archive snapshot rows, the shape
/// [`EdgeReputation::snapshot_retired`] exports: `(relay, [(drops,
/// timeouts, flagged) per shed identity, oldest first])`, sorted by relay
/// index.
pub type RetiredSnapshot = Vec<(usize, Vec<(u32, u32, bool)>)>;

/// One initiator's private fault ledger over all potential relays.
///
/// Scores decay harmonically with the observed fault count — one strike
/// halves the reputation, two strikes third it — and a validator cheat
/// flag zeroes it outright: receipt corruption is *attributed* misbehavior
/// (the §5 intact-prefix rule pins it on a specific forwarder), whereas a
/// drop or timeout could be the network's fault.
///
/// Storage is sparse: a relay with no recorded observation occupies no
/// memory (absent ≡ clean, ρ = 1), so a ledger's footprint scales with the
/// relays an initiator has actually seen misbehave, not with the network
/// size. Entries appear only on a recorded fault or flag, so equality over
/// the sparse map coincides with value equality of the dense ledger it
/// replaced.
/// Whitewash semantics: when a relay sheds its identity and rejoins
/// fresh, the ledger's *active* entry for it is archived into a retired
/// list, not destroyed — the new identity reads clean (ρ = 1, nothing
/// suppressed), but the evicted identity's evidence survives for audit
/// and is carried bit-identically through snapshot/resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReputation {
    n_nodes: usize,
    observed: std::collections::HashMap<usize, RelayFaults>,
    /// Archived observations of `v`'s shed identities, oldest first.
    /// Empty for every relay until a whitewash is recorded.
    retired: std::collections::HashMap<usize, Vec<RelayFaults>>,
}

impl EdgeReputation {
    /// A clean ledger over `n_nodes` relays (everyone starts at ρ = 1).
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        EdgeReputation {
            n_nodes,
            observed: std::collections::HashMap::new(),
            retired: std::collections::HashMap::new(),
        }
    }

    fn get(&self, v: NodeId) -> RelayFaults {
        assert!(v.index() < self.n_nodes, "relay {v} out of range");
        self.observed.get(&v.index()).copied().unwrap_or_default()
    }

    fn get_mut(&mut self, v: NodeId) -> &mut RelayFaults {
        assert!(v.index() < self.n_nodes, "relay {v} out of range");
        self.observed.entry(v.index()).or_default()
    }

    /// Records a confirmed loss (crash or packet drop) through `v`.
    pub fn record_drop(&mut self, v: NodeId) {
        self.get_mut(v).drops += 1;
    }

    /// Records a confirmation timeout attributed to `v` (includes dropped
    /// confirmations — from the initiator's seat a swallowed confirmation
    /// is indistinguishable from a slow one).
    pub fn record_timeout(&mut self, v: NodeId) {
        self.get_mut(v).timeouts += 1;
    }

    /// Marks `v` as a validator-flagged cheater (receipt corruption pinned
    /// on `v` by the intact-prefix rule). Irrevocable within a run.
    pub fn flag_cheater(&mut self, v: NodeId) {
        self.get_mut(v).flagged = true;
    }

    /// Observed drop count for `v`.
    #[must_use]
    pub fn drops(&self, v: NodeId) -> u32 {
        self.get(v).drops
    }

    /// Observed timeout count for `v`.
    #[must_use]
    pub fn timeouts(&self, v: NodeId) -> u32 {
        self.get(v).timeouts
    }

    /// Total observed (non-cheat) faults through `v`.
    #[must_use]
    pub fn fault_count(&self, v: NodeId) -> u32 {
        let f = self.get(v);
        f.drops + f.timeouts
    }

    /// Whether the validator has pinned receipt corruption on `v`.
    #[must_use]
    pub fn is_flagged(&self, v: NodeId) -> bool {
        self.get(v).flagged
    }

    /// The reputation score ρ(v) ∈ [0, 1]: zero for flagged cheaters,
    /// otherwise `1 / (1 + faults)`.
    #[must_use]
    pub fn score(&self, v: NodeId) -> f64 {
        let f = self.get(v);
        if f.flagged {
            0.0
        } else {
            1.0 / (1.0 + f64::from(f.drops + f.timeouts))
        }
    }

    /// Whether `v` should be excluded from path formation outright:
    /// flagged cheaters immediately, repeat offenders after
    /// [`SUPPRESSION_FAULTS`] observed faults.
    #[must_use]
    pub fn is_suppressed(&self, v: NodeId) -> bool {
        let f = self.get(v);
        f.flagged || f.drops + f.timeouts >= SUPPRESSION_FAULTS
    }

    /// Archives the active entry for `v` — the whitewash: `v` rejoined
    /// under a fresh identity, so its live reputation resets to clean while
    /// the shed identity's evidence moves to the retired list. Returns
    /// whether an entry was actually archived (a relay this initiator
    /// never observed has nothing to shed). A no-op on a clean entry, so
    /// sparse ledgers never materialize state for it.
    pub fn whitewash(&mut self, v: NodeId) -> bool {
        assert!(v.index() < self.n_nodes, "relay {v} out of range");
        match self.observed.remove(&v.index()) {
            Some(entry) => {
                self.retired.entry(v.index()).or_default().push(entry);
                true
            }
            None => false,
        }
    }

    /// Number of shed identities archived for `v`.
    #[must_use]
    pub fn retired_generations(&self, v: NodeId) -> usize {
        self.retired.get(&v.index()).map_or(0, std::vec::Vec::len)
    }

    /// Total faults (drops + timeouts) across `v`'s shed identities.
    #[must_use]
    pub fn retired_fault_count(&self, v: NodeId) -> u32 {
        self.retired
            .get(&v.index())
            .map_or(0, |gens| gens.iter().map(|f| f.drops + f.timeouts).sum())
    }

    /// Whether any shed identity of `v` carried a validator cheat flag.
    #[must_use]
    pub fn retired_flagged(&self, v: NodeId) -> bool {
        self.retired
            .get(&v.index())
            .is_some_and(|gens| gens.iter().any(|f| f.flagged))
    }

    /// Number of relays with at least one observation or flag.
    #[must_use]
    pub fn observed_nodes(&self) -> usize {
        self.observed
            .values()
            .filter(|f| f.drops > 0 || f.timeouts > 0 || f.flagged)
            .count()
    }

    /// Approximate heap footprint of the ledger, in bytes (sparse entries
    /// only — a clean ledger reports zero).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        // Entries and retired generations are counted by length, not
        // allocated capacity: the estimate must be a pure function of the
        // ledger's *value* so it survives snapshot/resume bit-identically.
        // Capacity is not value-pure once whitewashing can remove active
        // entries — a live map that grew past its current population and a
        // freshly restored one hold the same value at different capacities.
        self.observed.len() * (std::mem::size_of::<RelayFaults>() + std::mem::size_of::<usize>())
            + self
                .retired
                .values()
                .map(|gens| gens.len() * std::mem::size_of::<RelayFaults>())
                .sum::<usize>()
    }

    /// Snapshot export: `(relay, drops, timeouts, flagged)` for every relay
    /// with a recorded entry, sorted by relay index — a pure function of the
    /// ledger's value, independent of hash-map iteration order.
    #[must_use]
    pub fn snapshot_entries(&self) -> Vec<(usize, u32, u32, bool)> {
        let mut entries: Vec<(usize, u32, u32, bool)> = self
            .observed
            .iter()
            .map(|(&v, f)| (v, f.drops, f.timeouts, f.flagged))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries
    }

    /// Snapshot export of the retired archive:
    /// `(relay, [(drops, timeouts, flagged) per shed identity, oldest
    /// first])`, sorted by relay index.
    #[must_use]
    pub fn snapshot_retired(&self) -> RetiredSnapshot {
        let mut entries: RetiredSnapshot = self
            .retired
            .iter()
            .map(|(&v, gens)| {
                (
                    v,
                    gens.iter()
                        .map(|f| (f.drops, f.timeouts, f.flagged))
                        .collect(),
                )
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries
    }

    /// Restores the retired archive from a
    /// [`EdgeReputation::snapshot_retired`] export. Callers must have
    /// validated `v < n_nodes` for every entry (the snapshot decoder does).
    pub fn restore_retired(&mut self, entries: &RetiredSnapshot) {
        for (v, gens) in entries {
            self.retired.insert(
                *v,
                gens.iter()
                    .map(|&(drops, timeouts, flagged)| RelayFaults {
                        drops,
                        timeouts,
                        flagged,
                    })
                    .collect(),
            );
        }
    }

    /// Rebuilds a ledger from a [`EdgeReputation::snapshot_entries`] export.
    /// Callers must have validated `v < n_nodes` for every entry (the
    /// snapshot decoder does). [`EdgeReputation::approx_bytes`] — which
    /// feeds the run's memory metrics — is a pure function of the entries,
    /// so the restored ledger reports the snapshotted run's bytes exactly.
    #[must_use]
    pub fn from_snapshot(n_nodes: usize, entries: &[(usize, u32, u32, bool)]) -> Self {
        let mut rep = EdgeReputation::new(n_nodes);
        for &(v, drops, timeouts, flagged) in entries {
            rep.observed.insert(
                v,
                RelayFaults {
                    drops,
                    timeouts,
                    flagged,
                },
            );
        }
        rep
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    #[test]
    fn clean_ledger_scores_everyone_at_one() {
        let rep = EdgeReputation::new(4);
        for i in 0..4 {
            assert!((rep.score(NodeId(i)) - 1.0).abs() < f64::EPSILON);
            assert!(!rep.is_suppressed(NodeId(i)));
        }
        assert_eq!(rep.observed_nodes(), 0);
    }

    #[test]
    fn faults_decay_score_harmonically() {
        let mut rep = EdgeReputation::new(3);
        rep.record_drop(NodeId(1));
        assert!((rep.score(NodeId(1)) - 0.5).abs() < f64::EPSILON);
        assert!(!rep.is_suppressed(NodeId(1)), "one strike is not enough");
        rep.record_timeout(NodeId(1));
        assert!((rep.score(NodeId(1)) - 1.0 / 3.0).abs() < f64::EPSILON);
        assert!(rep.is_suppressed(NodeId(1)), "two strikes suppress");
        assert_eq!(rep.fault_count(NodeId(1)), 2);
        assert_eq!(rep.observed_nodes(), 1);
    }

    #[test]
    fn whitewash_resets_active_entry_but_archives_evidence() {
        let mut rep = EdgeReputation::new(4);
        rep.record_drop(NodeId(1));
        rep.record_timeout(NodeId(1));
        rep.flag_cheater(NodeId(1));
        assert!(rep.is_suppressed(NodeId(1)));

        assert!(rep.whitewash(NodeId(1)), "an observed entry is archived");
        // The fresh identity reads clean…
        assert_eq!(rep.score(NodeId(1)), 1.0);
        assert!(!rep.is_suppressed(NodeId(1)));
        assert_eq!(rep.fault_count(NodeId(1)), 0);
        // …but the shed identity's evidence survives.
        assert_eq!(rep.retired_generations(NodeId(1)), 1);
        assert_eq!(rep.retired_fault_count(NodeId(1)), 2);
        assert!(rep.retired_flagged(NodeId(1)));

        // Whitewashing a never-observed relay archives nothing.
        assert!(!rep.whitewash(NodeId(2)));
        assert_eq!(rep.retired_generations(NodeId(2)), 0);

        // A second strike-and-wash stacks a second generation.
        rep.record_drop(NodeId(1));
        assert!(rep.whitewash(NodeId(1)));
        assert_eq!(rep.retired_generations(NodeId(1)), 2);
        assert_eq!(rep.retired_fault_count(NodeId(1)), 3);
    }

    #[test]
    fn retired_archive_round_trips_through_snapshot() {
        let mut rep = EdgeReputation::new(5);
        rep.record_drop(NodeId(3));
        rep.whitewash(NodeId(3));
        rep.record_timeout(NodeId(3));
        rep.flag_cheater(NodeId(0));
        rep.whitewash(NodeId(0));

        let mut restored = EdgeReputation::from_snapshot(5, &rep.snapshot_entries());
        restored.restore_retired(&rep.snapshot_retired());
        assert_eq!(rep, restored);
        assert_eq!(restored.retired_fault_count(NodeId(3)), 1);
        assert!(restored.retired_flagged(NodeId(0)));
    }

    #[test]
    fn cheat_flag_zeroes_and_suppresses_immediately() {
        let mut rep = EdgeReputation::new(3);
        rep.flag_cheater(NodeId(2));
        assert_eq!(rep.score(NodeId(2)), 0.0);
        assert!(rep.is_suppressed(NodeId(2)));
        assert!(rep.is_flagged(NodeId(2)));
        assert_eq!(rep.fault_count(NodeId(2)), 0, "flags are not fault counts");
    }
}
