//! Hop-by-hop path formation (§2.2).
//!
//! "The establishment of the forwarding path is based on propagation of
//! contract information (P_f and P_r) through the intermediate nodes":
//! starting at the initiator, each payload holder applies the Crowds coin
//! (continue vs deliver), then — if continuing — picks the next hop by its
//! own routing strategy (utility-driven for selfish-rational peers, random
//! for adversaries). After delivery, the confirmation flows back along the
//! reverse path and every forwarder's history profile is updated with its
//! `(predecessor, successor)` record (Table 1).

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_overlay::{NodeId, NodeKind};
use rand::RngExt;

use crate::contract::Contract;
use crate::history::{HistoryRead, HistoryWrite};
use crate::quality::EdgeQuality;
use crate::routing::{
    choose_next_hop_colluding_with, choose_next_hop_with, AdversaryStrategy, PathPolicy,
    RouteScratch, RoutingStrategy, RoutingView,
};

/// The outcome of forming one connection.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// Intermediate forwarders in order (`I → f_1 → … → f_n → R`,
    /// endpoints excluded). May repeat a node (two positions on one path).
    pub forwarders: Vec<NodeId>,
    /// Transmission cost paid by each forwarder to its successor
    /// (`f_i → f_{i+1}` or `f_n → R`), parallel to `forwarders`.
    pub hop_costs: Vec<f64>,
    /// Transmission cost the initiator paid for its own first hop
    /// (`I → f_1`, or `I → R` on a direct connection).
    pub initiator_cost: f64,
}

impl PathOutcome {
    /// Number of forwarding hops (path length contribution `L`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.forwarders.len()
    }

    /// Whether the connection went directly `I → R`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forwarders.is_empty()
    }

    /// The directed forwarding edges of the path, including `I`'s first
    /// hop and the final hop into `R` — the edge set Prop. 1's reformation
    /// argument counts.
    #[must_use]
    pub fn edges(&self, initiator: NodeId, responder: NodeId) -> Vec<(NodeId, NodeId)> {
        let mut nodes = Vec::with_capacity(self.forwarders.len() + 2);
        nodes.push(initiator);
        nodes.extend_from_slice(&self.forwarders);
        nodes.push(responder);
        nodes.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

/// Forms one connection of a bundle.
///
/// * `priors` — completed connections of this bundle (drives selectivity).
/// * `good_strategy` — the routing strategy selfish-rational peers use
///   (the experiment axis of Figs. 5–7); malicious peers always route
///   randomly (§2.4).
/// * `histories` — the per-node history store (any [`HistoryRead`] +
///   [`HistoryWrite`] layout: flat profile vector or sharded arena view);
///   updated in place with this connection's records as the confirmation
///   returns.
///
/// The initiator always attempts at least one forwarder hop (as in Crowds,
/// the first hop is unconditional); the coin governs every later hop.
#[allow(clippy::too_many_arguments)]
pub fn form_connection<H: HistoryRead + HistoryWrite + ?Sized>(
    initiator: NodeId,
    connection_index: u32,
    contract: &Contract,
    priors: u32,
    view: &impl RoutingView,
    histories: &mut H,
    kinds: &[NodeKind],
    quality: &EdgeQuality,
    good_strategy: RoutingStrategy,
    policy: &PathPolicy,
    rng: &mut Xoshiro256StarStar,
) -> PathOutcome {
    form_connection_with_adversary(
        initiator,
        connection_index,
        contract,
        priors,
        view,
        histories,
        kinds,
        quality,
        good_strategy,
        AdversaryStrategy::Random,
        policy,
        rng,
    )
}

/// [`form_connection`] with an explicit malicious-node strategy (the base
/// model is [`AdversaryStrategy::Random`]; [`AdversaryStrategy::Colluding`]
/// strengthens the adversary per the §4 collusion discussion).
#[allow(clippy::too_many_arguments)]
pub fn form_connection_with_adversary<H: HistoryRead + HistoryWrite + ?Sized>(
    initiator: NodeId,
    connection_index: u32,
    contract: &Contract,
    priors: u32,
    view: &impl RoutingView,
    histories: &mut H,
    kinds: &[NodeKind],
    quality: &EdgeQuality,
    good_strategy: RoutingStrategy,
    adversary: AdversaryStrategy,
    policy: &PathPolicy,
    rng: &mut Xoshiro256StarStar,
) -> PathOutcome {
    let mut scratch = RouteScratch::new();
    form_connection_with_scratch(
        &mut scratch,
        initiator,
        connection_index,
        contract,
        priors,
        view,
        histories,
        kinds,
        quality,
        good_strategy,
        adversary,
        policy,
        rng,
    )
}

/// [`form_connection_with_adversary`] reusing caller-owned scratch state.
///
/// The hot path of the simulator: buffers and the per-transmission memo
/// caches in `scratch` are reused across hops of this connection (and the
/// buffers across connections). This function calls
/// [`RouteScratch::begin_transmission`] itself — histories are only
/// mutated after all hop decisions are made, so the caches are valid for
/// exactly the duration of the hop loop.
#[allow(clippy::too_many_arguments)]
pub fn form_connection_with_scratch<H: HistoryRead + HistoryWrite + ?Sized>(
    scratch: &mut RouteScratch,
    initiator: NodeId,
    connection_index: u32,
    contract: &Contract,
    priors: u32,
    view: &impl RoutingView,
    histories: &mut H,
    kinds: &[NodeKind],
    quality: &EdgeQuality,
    good_strategy: RoutingStrategy,
    adversary: AdversaryStrategy,
    policy: &PathPolicy,
    rng: &mut Xoshiro256StarStar,
) -> PathOutcome {
    let pending = form_connection_pending(
        scratch,
        initiator,
        contract,
        priors,
        view,
        &*histories,
        kinds,
        quality,
        good_strategy,
        adversary,
        policy,
        rng,
    );
    pending.commit(contract.bundle, connection_index, histories);
    pending.into_outcome()
}

/// A formed connection whose history records have **not** been committed.
///
/// §2.2 makes history confirmation-driven: "after R receives the payload,
/// it sends back a confirmation through the reverse path" and only then do
/// path nodes update their Table 1 records. Under fault injection a
/// transmission can fail mid-path (no confirmation, no history) or the
/// confirmation can be swallowed partway back (only the suffix that saw it
/// records), so formation and commit must be separable. The zero-fault
/// path commits everything immediately via
/// [`form_connection_with_scratch`], which consumes exactly the same RNG
/// draws as before the split.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingConnection {
    outcome: PathOutcome,
    /// `(node, predecessor, successor)` per path position: entry 0 is the
    /// initiator's record, entry `p >= 1` belongs to forwarder `f_p`.
    hop_records: Vec<(NodeId, NodeId, NodeId)>,
}

impl PendingConnection {
    /// The formed path (read-only until committed).
    #[must_use]
    pub fn outcome(&self) -> &PathOutcome {
        &self.outcome
    }

    /// Extracts the outcome, discarding the uncommitted records.
    #[must_use]
    pub fn into_outcome(self) -> PathOutcome {
        self.outcome
    }

    /// The per-position history records (initiator first).
    #[must_use]
    pub fn records(&self) -> &[(NodeId, NodeId, NodeId)] {
        &self.hop_records
    }

    /// Commits every node's record — the full confirmation reached `I`.
    pub fn commit<H: HistoryWrite + ?Sized>(
        &self,
        bundle: crate::bundle::BundleId,
        connection_index: u32,
        histories: &mut H,
    ) {
        for &(node, pred, succ) in &self.hop_records {
            histories.record_hop(node, bundle, connection_index, pred, succ);
        }
    }

    /// Commits only the records of path positions **strictly after**
    /// `position` — the nodes a confirmation passed through before being
    /// swallowed by the cheater at `position` (1-based forwarder index).
    /// The cheater itself and everyone upstream (including `I`) record
    /// nothing.
    pub fn commit_suffix<H: HistoryWrite + ?Sized>(
        &self,
        position: usize,
        bundle: crate::bundle::BundleId,
        connection_index: u32,
        histories: &mut H,
    ) {
        for &(node, pred, succ) in self.hop_records.iter().skip(position + 1) {
            histories.record_hop(node, bundle, connection_index, pred, succ);
        }
    }
}

/// Forms a connection without committing history — see
/// [`PendingConnection`]. Hop decisions read `histories` but never write;
/// RNG consumption is identical to [`form_connection_with_scratch`].
#[allow(clippy::too_many_arguments)]
pub fn form_connection_pending<H: HistoryRead + ?Sized>(
    scratch: &mut RouteScratch,
    initiator: NodeId,
    contract: &Contract,
    priors: u32,
    view: &impl RoutingView,
    histories: &H,
    kinds: &[NodeKind],
    quality: &EdgeQuality,
    good_strategy: RoutingStrategy,
    adversary: AdversaryStrategy,
    policy: &PathPolicy,
    rng: &mut Xoshiro256StarStar,
) -> PendingConnection {
    scratch.begin_transmission();
    let mut forwarders: Vec<NodeId> = Vec::new();
    let mut hop_records: Vec<(NodeId, NodeId, NodeId)> = Vec::new(); // (node, pred, succ)
    let mut current = initiator;
    let mut predecessor = initiator; // I's own record uses itself as pred

    loop {
        let coin = rng.random_range(0.0..1.0);
        if !policy.wants_another_hop(forwarders.len(), coin) {
            break;
        }
        let choice = if kinds[current.index()].is_good() {
            choose_next_hop_with(
                scratch,
                current,
                good_strategy,
                contract,
                priors,
                histories,
                view,
                quality,
                rng,
            )
        } else {
            match adversary {
                AdversaryStrategy::Random => choose_next_hop_with(
                    scratch,
                    current,
                    RoutingStrategy::Random,
                    contract,
                    priors,
                    histories,
                    view,
                    quality,
                    rng,
                ),
                AdversaryStrategy::Colluding => {
                    choose_next_hop_colluding_with(scratch, current, contract, kinds, view, rng)
                }
            }
        };
        let Some(choice) = choice else {
            break; // no candidate or rational decline: deliver to R
        };
        hop_records.push((current, predecessor, choice.next));
        forwarders.push(choice.next);
        predecessor = current;
        current = choice.next;
    }
    // Final delivery edge: current → R.
    hop_records.push((current, predecessor, contract.responder));

    // Cost accounting: each path node pays the transmission cost of its
    // outgoing edge; the first entry is the initiator's own cost.
    let initiator_cost = {
        let first_succ = forwarders.first().copied().unwrap_or(contract.responder);
        view.transmission_cost(initiator, first_succ)
    };
    let hop_costs = forwarders
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let succ = forwarders.get(i + 1).copied().unwrap_or(contract.responder);
            view.transmission_cost(f, succ)
        })
        .collect();

    PendingConnection {
        outcome: PathOutcome {
            forwarders,
            hop_costs,
            initiator_cost,
        },
        hop_records,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::bundle::BundleId;
    use crate::history::HistoryProfile;
    use crate::quality::Weights;
    use crate::utility::UtilityModel;
    use std::collections::HashMap;

    struct FixtureView {
        neighbors: HashMap<NodeId, Vec<NodeId>>,
        availability: HashMap<(NodeId, NodeId), f64>,
    }

    impl FixtureView {
        fn ring(n: usize) -> Self {
            // Node i's neighbors: i+1 and i+2 (mod n); responder is n-1.
            let mut neighbors = HashMap::new();
            let mut availability = HashMap::new();
            for i in 0..n {
                let a = NodeId((i + 1) % n);
                let b = NodeId((i + 2) % n);
                neighbors.insert(NodeId(i), vec![a, b]);
                availability.insert((NodeId(i), a), 0.8);
                availability.insert((NodeId(i), b), 0.4);
            }
            FixtureView {
                neighbors,
                availability,
            }
        }
    }

    impl RoutingView for FixtureView {
        fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
            self.neighbors.get(&s).cloned().unwrap_or_default()
        }
        fn availability(&self, s: NodeId, v: NodeId) -> f64 {
            self.availability.get(&(s, v)).copied().unwrap_or(0.0)
        }
        fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
            1.0
        }
        fn participation_cost(&self, _: NodeId) -> f64 {
            1.0
        }
    }

    fn setup(n: usize) -> (Contract, Vec<HistoryProfile>, Vec<NodeKind>, EdgeQuality) {
        let contract = Contract::new(BundleId(0), NodeId(n - 1), 50.0, 100.0);
        let histories = (0..n).map(|i| HistoryProfile::new(NodeId(i))).collect();
        let kinds = vec![NodeKind::Good; n];
        let quality = EdgeQuality::new(Weights::balanced());
        (contract, histories, kinds, quality)
    }

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn forms_nonempty_paths() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        let out = form_connection(
            NodeId(0),
            0,
            &contract,
            0,
            &view,
            &mut histories,
            &kinds,
            &quality,
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &PathPolicy::new(0.75, 8),
            &mut rng(1),
        );
        assert!(!out.is_empty(), "first hop is unconditional");
        assert_eq!(out.forwarders.len(), out.hop_costs.len());
    }

    #[test]
    fn respects_max_hops() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        for seed in 0..50 {
            let out = form_connection(
                NodeId(0),
                0,
                &contract,
                0,
                &view,
                &mut histories,
                &kinds,
                &quality,
                RoutingStrategy::Random,
                &PathPolicy::new(0.95, 4),
                &mut rng(seed),
            );
            assert!(out.len() <= 4, "seed {seed}: {}", out.len());
        }
    }

    #[test]
    fn forwarders_never_include_endpoints() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        for seed in 0..50 {
            let out = form_connection(
                NodeId(0),
                0,
                &contract,
                0,
                &view,
                &mut histories,
                &kinds,
                &quality,
                RoutingStrategy::Random,
                &PathPolicy::new(0.75, 8),
                &mut rng(seed),
            );
            assert!(!out.forwarders.contains(&contract.responder));
        }
    }

    #[test]
    fn history_recorded_for_every_path_node() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        let out = form_connection(
            NodeId(0),
            0,
            &contract,
            0,
            &view,
            &mut histories,
            &kinds,
            &quality,
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &PathPolicy::new(0.75, 8),
            &mut rng(2),
        );
        // The initiator recorded its first hop.
        assert_eq!(histories[0].bundle_records(contract.bundle).len(), 1);
        // The last forwarder recorded an edge into R.
        let last = *out.forwarders.last().unwrap();
        let recs = histories[last.index()].bundle_records(contract.bundle);
        assert!(recs.iter().any(|r| r.successor == contract.responder));
    }

    #[test]
    fn stable_choice_across_connections_with_history() {
        // With utility routing and static liveness, the second connection
        // must reuse the first connection's edges (selectivity reinforces
        // them) — the mechanism behind Prop. 1.
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        let strategy = RoutingStrategy::Utility(UtilityModel::ModelI);
        let policy = PathPolicy::new(0.75, 8);
        let first = form_connection(
            NodeId(0),
            0,
            &contract,
            0,
            &view,
            &mut histories,
            &kinds,
            &quality,
            strategy,
            &policy,
            &mut rng(3),
        );
        let second = form_connection(
            NodeId(0),
            1,
            &contract,
            1,
            &view,
            &mut histories,
            &kinds,
            &quality,
            strategy,
            &policy,
            &mut rng(4),
        );
        // Same prefix as far as the shorter path goes.
        let common = first.forwarders.len().min(second.forwarders.len());
        assert!(common > 0);
        assert_eq!(
            &first.forwarders[..common],
            &second.forwarders[..common],
            "utility routing must stay on reinforced edges"
        );
    }

    #[test]
    fn pending_commit_matches_inline_formation() {
        // The committed-path entry point and the pending+commit pair must
        // leave histories and RNG state bit-identical.
        let view = FixtureView::ring(10);
        let (contract, mut h_inline, kinds, quality) = setup(10);
        let (_, mut h_pending, _, _) = setup(10);
        let strategy = RoutingStrategy::Utility(UtilityModel::ModelI);
        let policy = PathPolicy::new(0.75, 8);
        let mut rng_a = rng(21);
        let mut rng_b = rng(21);
        let inline = form_connection(
            NodeId(0),
            0,
            &contract,
            0,
            &view,
            &mut h_inline,
            &kinds,
            &quality,
            strategy,
            &policy,
            &mut rng_a,
        );
        let mut scratch = RouteScratch::new();
        let pending = form_connection_pending(
            &mut scratch,
            NodeId(0),
            &contract,
            0,
            &view,
            &h_pending,
            &kinds,
            &quality,
            strategy,
            AdversaryStrategy::Random,
            &policy,
            &mut rng_b,
        );
        pending.commit(contract.bundle, 0, &mut h_pending);
        assert_eq!(inline, *pending.outcome());
        assert_eq!(rng_a, rng_b, "identical RNG consumption");
        for i in 0..10 {
            assert_eq!(
                h_inline[i].bundle_records(contract.bundle),
                h_pending[i].bundle_records(contract.bundle),
                "node {i} history diverged"
            );
        }
    }

    #[test]
    fn uncommitted_connection_leaves_histories_untouched() {
        let view = FixtureView::ring(10);
        let (contract, histories, kinds, quality) = setup(10);
        let mut scratch = RouteScratch::new();
        let pending = form_connection_pending(
            &mut scratch,
            NodeId(0),
            &contract,
            0,
            &view,
            &histories,
            &kinds,
            &quality,
            RoutingStrategy::Random,
            AdversaryStrategy::Random,
            &policy_default(),
            &mut rng(22),
        );
        assert!(!pending.records().is_empty());
        for h in &histories {
            assert!(h.bundle_records(contract.bundle).is_empty());
        }
    }

    #[test]
    fn commit_suffix_records_only_downstream_of_cheater() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        let mut scratch = RouteScratch::new();
        // Find a seed with at least 3 forwarders so the suffix is nonempty.
        let pending = (0..100)
            .find_map(|seed| {
                let p = form_connection_pending(
                    &mut scratch,
                    NodeId(0),
                    &contract,
                    0,
                    &view,
                    &histories,
                    &kinds,
                    &quality,
                    RoutingStrategy::Random,
                    AdversaryStrategy::Random,
                    &policy_default(),
                    &mut rng(seed),
                );
                (p.outcome().len() >= 3).then_some(p)
            })
            .expect("some seed forms a 3-hop path");
        let cheater_pos = 1; // f_1 swallows the confirmation
        pending.commit_suffix(cheater_pos, contract.bundle, 0, &mut histories);
        // Initiator (position 0) and the cheater recorded nothing.
        assert!(histories[0].bundle_records(contract.bundle).is_empty());
        let cheater = pending.outcome().forwarders[cheater_pos - 1];
        assert!(histories[cheater.index()]
            .bundle_records(contract.bundle)
            .is_empty());
        // Every position after the cheater recorded exactly its entry.
        for (p, &(node, pred, succ)) in pending.records().iter().enumerate().skip(cheater_pos + 1) {
            let recs = histories[node.index()].bundle_records(contract.bundle);
            assert!(
                recs.iter()
                    .any(|r| r.predecessor == pred && r.successor == succ),
                "position {p} missing its record"
            );
        }
    }

    fn policy_default() -> PathPolicy {
        PathPolicy::new(0.75, 8)
    }

    #[test]
    fn edges_include_endpoints() {
        let out = PathOutcome {
            forwarders: vec![NodeId(1), NodeId(2)],
            hop_costs: vec![1.0, 1.0],
            initiator_cost: 1.0,
        };
        assert_eq!(
            out.edges(NodeId(0), NodeId(9)),
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(9)),
            ]
        );
    }

    #[test]
    fn direct_connection_when_no_candidates() {
        // A star where the initiator's only neighbor is the responder.
        let mut neighbors = HashMap::new();
        neighbors.insert(NodeId(0), vec![NodeId(1)]);
        let view = FixtureView {
            neighbors,
            availability: HashMap::new(),
        };
        let contract = Contract::new(BundleId(0), NodeId(1), 50.0, 100.0);
        let mut histories = vec![
            HistoryProfile::new(NodeId(0)),
            HistoryProfile::new(NodeId(1)),
        ];
        let kinds = vec![NodeKind::Good; 2];
        let quality = EdgeQuality::new(Weights::balanced());
        let out = form_connection(
            NodeId(0),
            0,
            &contract,
            0,
            &view,
            &mut histories,
            &kinds,
            &quality,
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &PathPolicy::new(0.75, 8),
            &mut rng(5),
        );
        assert!(out.is_empty());
        assert_eq!(out.initiator_cost, 1.0);
    }

    #[test]
    fn hop_distance_policy_forms_exact_length_paths() {
        let view = FixtureView::ring(10);
        let (contract, mut histories, kinds, quality) = setup(10);
        for seed in 0..20 {
            let out = form_connection(
                NodeId(0),
                0,
                &contract,
                0,
                &view,
                &mut histories,
                &kinds,
                &quality,
                RoutingStrategy::Random,
                &PathPolicy::hop_distance(4),
                &mut rng(seed),
            );
            // The ring always has live candidates, so length is exact.
            assert_eq!(out.len(), 4, "seed {seed}");
        }
    }

    #[test]
    fn malicious_nodes_route_randomly_regardless_of_strategy() {
        // All nodes malicious: with utility strategy configured for good
        // nodes, paths must still vary across seeds (random routing).
        let view = FixtureView::ring(10);
        let (contract, mut histories, _, quality) = setup(10);
        let kinds = vec![NodeKind::Malicious; 10];
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..20 {
            let out = form_connection(
                NodeId(0),
                0,
                &contract,
                0,
                &view,
                &mut histories,
                &kinds,
                &quality,
                RoutingStrategy::Utility(UtilityModel::ModelI),
                &PathPolicy::new(0.75, 8),
                &mut rng(seed),
            );
            distinct.insert(out.forwarders.clone());
        }
        assert!(distinct.len() > 3, "random routing must vary paths");
    }
}
