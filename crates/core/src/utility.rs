//! The utility models (§2.2, §2.4.2, §2.4.3).
//!
//! * **Model I** (edge-local): `U_i(j) = P_f + q(i,j)·P_r − (C_i^p + C^t(i,j))`
//! * **Model II** (path-global): `U_i(j) = P_f + q(π(i,j,R))·P_r − (C_i^p + C^t(i,j))`,
//!   where `q(π(i,j,R))` is the quality of the best continuation path from
//!   `i` through `j` to the responder — evaluated by bounded-depth backward
//!   induction over the live neighbor graph (the L-stage game of §2.4.3).
//! * **Initiator utility**: `U_I = A(‖π‖) − ‖π‖·P_f − P_r` (§2.2), with
//!   `A(·)` an anonymity-quantification function that increases as `‖π‖`
//!   decreases; the paper leaves `A` abstract, we use a configurable affine
//!   model (DESIGN.md §5).

/// Forwarder utility, model I: `P_f + q·P_r − (C^p + C^t)`.
#[must_use]
pub fn model_one_utility(pf: f64, pr: f64, edge_quality: f64, cp: f64, ct: f64) -> f64 {
    pf + edge_quality * pr - (cp + ct)
}

/// Forwarder utility, model II: `P_f + q_path·P_r − (C^p + C^t)` where
/// `q_path` is the (normalised) quality of the continuation path through
/// the candidate.
#[must_use]
pub fn model_two_utility(pf: f64, pr: f64, path_quality: f64, cp: f64, ct: f64) -> f64 {
    pf + path_quality * pr - (cp + ct)
}

/// Which utility model a good node routes by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UtilityModel {
    /// Edge-local (§2.4.2). Next-hop choice costs `O(d)` per hop
    /// (`O(log d)` with a sorted neighbor cache, as the paper notes).
    ModelI,
    /// Path-global (§2.4.3), with the given lookahead horizon (depth of
    /// the backward-induction evaluation toward R).
    ModelII {
        /// Continuation-path search depth. Depth 1 degenerates to model I.
        lookahead: u8,
    },
}

impl UtilityModel {
    /// The paper's model II with a practical default horizon.
    #[must_use]
    pub fn model_two_default() -> Self {
        UtilityModel::ModelII { lookahead: 3 }
    }
}

/// The initiator's anonymity-quantification function `A(‖π‖)` and utility
/// `U_I = A(‖π‖) − ‖π‖·P_f − P_r`.
///
/// The paper requires only that `A` increase as `‖π‖` decreases; we use the
/// affine family `A(x) = a0 − a1·x`, `a1 > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitiatorUtility {
    /// Intercept `a0` of the anonymity function.
    pub a0: f64,
    /// Slope `a1 > 0`: anonymity lost per extra forwarder.
    pub a1: f64,
}

impl InitiatorUtility {
    /// Creates the utility with the affine anonymity model.
    #[must_use]
    pub fn new(a0: f64, a1: f64) -> Self {
        assert!(a1 > 0.0, "A must strictly decrease in ‖π‖ (a1 > 0)");
        InitiatorUtility { a0, a1 }
    }

    /// `A(‖π‖) = a0 − a1·‖π‖`.
    #[must_use]
    pub fn anonymity(&self, forwarder_set_size: f64) -> f64 {
        self.a0 - self.a1 * forwarder_set_size
    }

    /// `U_I = A(‖π‖) − ‖π‖·P_f − P_r`.
    ///
    /// Note: the paper's Eq. 2 charges `‖π‖·P_f`; in the implementation the
    /// initiator actually pays `P_f` per forwarding *instance*, which for a
    /// stable forwarder set coincides with `‖π‖` per connection. We follow
    /// Eq. 2 verbatim here; the simulator accounts instances exactly.
    #[must_use]
    pub fn utility(&self, forwarder_set_size: f64, pf: f64, pr: f64) -> f64 {
        self.anonymity(forwarder_set_size) - forwarder_set_size * pf - pr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_one_matches_formula() {
        // U = 50 + 0.5*100 - (5 + 2) = 93
        assert!((model_one_utility(50.0, 100.0, 0.5, 5.0, 2.0) - 93.0).abs() < 1e-12);
    }

    #[test]
    fn model_one_increases_with_quality() {
        let low = model_one_utility(50.0, 100.0, 0.2, 5.0, 2.0);
        let high = model_one_utility(50.0, 100.0, 0.9, 5.0, 2.0);
        assert!(high > low);
    }

    #[test]
    fn model_two_matches_formula() {
        assert!((model_two_utility(50.0, 100.0, 0.8, 5.0, 2.0) - 123.0).abs() < 1e-12);
    }

    #[test]
    fn models_agree_when_path_equals_edge_quality() {
        assert_eq!(
            model_one_utility(50.0, 100.0, 0.6, 5.0, 2.0),
            model_two_utility(50.0, 100.0, 0.6, 5.0, 2.0)
        );
    }

    #[test]
    fn model_two_default_has_lookahead() {
        match UtilityModel::model_two_default() {
            UtilityModel::ModelII { lookahead } => assert!(lookahead >= 2),
            UtilityModel::ModelI => panic!("expected model II"),
        }
    }

    #[test]
    fn initiator_prefers_small_forwarder_sets() {
        let u = InitiatorUtility::new(1000.0, 10.0);
        assert!(u.utility(3.0, 50.0, 100.0) > u.utility(8.0, 50.0, 100.0));
    }

    #[test]
    fn anonymity_decreases_in_set_size() {
        let u = InitiatorUtility::new(100.0, 5.0);
        assert_eq!(u.anonymity(0.0), 100.0);
        assert_eq!(u.anonymity(4.0), 80.0);
        assert!(u.anonymity(3.0) > u.anonymity(4.0));
    }

    #[test]
    fn initiator_utility_formula() {
        let u = InitiatorUtility::new(1000.0, 10.0);
        // A(4) = 960; U = 960 - 4*50 - 100 = 660
        assert!((u.utility(4.0, 50.0, 100.0) - 660.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "a1 > 0")]
    fn flat_anonymity_rejected() {
        let _ = InitiatorUtility::new(100.0, 0.0);
    }
}
