//! The forwarding contract (§2.2).
//!
//! "When an initiator I decides to set up a connection to a responder R
//! ... It makes a commitment to pay an amount P_f to any intermediate
//! forwarder, per forwarding instance (forwarding benefit). In addition it
//! also decides to pay a total shared benefit (routing benefit) equal to
//! P_r to all the forwarders." The contract `(P_f, P_r)` is what propagates
//! hop by hop — the initiator's identity does not.

use idpa_overlay::NodeId;

use crate::bundle::BundleId;

/// The contract an initiator attaches to a connection bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contract {
    /// The bundle of recurring connections this contract covers.
    pub bundle: BundleId,
    /// The responder; known to intermediate forwarders (the paper hides
    /// only the initiator).
    pub responder: NodeId,
    /// Forwarding benefit `P_f` per forwarding instance.
    pub pf: f64,
    /// Total routing benefit `P_r`, shared over the forwarder set.
    pub pr: f64,
}

impl Contract {
    /// Creates a contract, validating benefit signs.
    #[must_use]
    pub fn new(bundle: BundleId, responder: NodeId, pf: f64, pr: f64) -> Self {
        assert!(pf >= 0.0 && pf.is_finite(), "invalid P_f: {pf}");
        assert!(pr >= 0.0 && pr.is_finite(), "invalid P_r: {pr}");
        Contract {
            bundle,
            responder,
            pf,
            pr,
        }
    }

    /// The ratio `τ = P_r / P_f` the paper sweeps in Table 2 (∞ if
    /// `P_f = 0`).
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.pr / self.pf
    }

    /// Constructs the contract from `P_f` and `τ` (`P_r = τ·P_f`), the
    /// parameterisation of §3.
    #[must_use]
    pub fn from_tau(bundle: BundleId, responder: NodeId, pf: f64, tau: f64) -> Self {
        assert!(tau >= 0.0 && tau.is_finite(), "invalid tau: {tau}");
        Contract::new(bundle, responder, pf, tau * pf)
    }
}

/// Initiator-side contract planning (§2.2).
///
/// "Depending on its anonymity requirements, the initiator can select
/// appropriate values for P_f and P_r": `P_f` must exceed the Prop. 2/3
/// thresholds to induce participation, and `τ = P_r/P_f` must be large
/// enough to also align *routing* decisions; beyond that, every extra unit
/// of payment reduces `U_I = A(‖π‖) − ‖π‖·P_f − P_r`. The planner picks the
/// cheapest contract satisfying the game-theoretic constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContractPlanner {
    /// One-time participation cost `C^p` of peers.
    pub participation_cost: f64,
    /// Worst-case transmission cost `C^t` on any link.
    pub max_transmission_cost: f64,
    /// Number of peers `N`.
    pub n_nodes: usize,
    /// Expected path length `L`.
    pub expected_path_length: f64,
    /// Planned connections `k` in the bundle.
    pub connections: u32,
    /// Safety margin multiplied onto the thresholds (≥ 1).
    pub margin: f64,
}

impl ContractPlanner {
    /// The Prop. 3 dominance threshold `C^p + C^t` (per-stage worst case).
    #[must_use]
    pub fn dominance_threshold(&self) -> f64 {
        self.participation_cost + self.max_transmission_cost
    }

    /// The Prop. 2 participation threshold `C^p·N/(L·k) + C^t`.
    #[must_use]
    pub fn participation_threshold(&self) -> f64 {
        self.participation_cost * self.n_nodes as f64
            / (self.expected_path_length * f64::from(self.connections))
            + self.max_transmission_cost
    }

    /// The cheapest `P_f` satisfying both propositions with the margin.
    #[must_use]
    pub fn minimum_pf(&self) -> f64 {
        assert!(self.margin >= 1.0, "margin must be >= 1");
        self.margin
            * self
                .dominance_threshold()
                .max(self.participation_threshold())
    }

    /// Plans a contract: minimal compliant `P_f`, and `P_r = τ·P_f` for the
    /// requested routing-alignment ratio.
    #[must_use]
    pub fn plan(&self, bundle: BundleId, responder: NodeId, tau: f64) -> Contract {
        Contract::from_tau(bundle, responder, self.minimum_pf(), tau)
    }

    /// The initiator's utility for a candidate contract, given the
    /// anonymity model and an expected forwarder-set size.
    #[must_use]
    pub fn initiator_utility(
        &self,
        contract: &Contract,
        anonymity: &crate::utility::InitiatorUtility,
        expected_set_size: f64,
    ) -> f64 {
        anonymity.utility(expected_set_size, contract.pf, contract.pr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::InitiatorUtility;

    #[test]
    fn tau_round_trips() {
        let c = Contract::from_tau(BundleId(1), NodeId(3), 50.0, 2.0);
        assert_eq!(c.pr, 100.0);
        assert!((c.tau() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plain_construction() {
        let c = Contract::new(BundleId(0), NodeId(1), 75.0, 37.5);
        assert!((c.tau() - 0.5).abs() < 1e-12);
        assert_eq!(c.responder, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "invalid P_f")]
    fn negative_pf_rejected() {
        let _ = Contract::new(BundleId(0), NodeId(1), -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid tau")]
    fn negative_tau_rejected() {
        let _ = Contract::from_tau(BundleId(0), NodeId(1), 50.0, -2.0);
    }

    fn planner() -> ContractPlanner {
        ContractPlanner {
            participation_cost: 5.0,
            max_transmission_cost: 10.0,
            n_nodes: 40,
            expected_path_length: 4.0,
            connections: 20,
            margin: 1.1,
        }
    }

    #[test]
    fn planner_thresholds_match_propositions() {
        let p = planner();
        assert!((p.dominance_threshold() - 15.0).abs() < 1e-12);
        // 5*40/(4*20) + 10 = 12.5
        assert!((p.participation_threshold() - 12.5).abs() < 1e-12);
        // Dominance binds here; margin 1.1 => 16.5
        assert!((p.minimum_pf() - 16.5).abs() < 1e-12);
    }

    #[test]
    fn planned_contract_satisfies_both_thresholds() {
        let p = planner();
        let c = p.plan(BundleId(0), NodeId(1), 2.0);
        assert!(c.pf > p.dominance_threshold());
        assert!(c.pf > p.participation_threshold());
        assert!((c.tau() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_connections_raise_required_pf() {
        // Participation cost amortises over fewer instances.
        let few = ContractPlanner {
            connections: 2,
            ..planner()
        };
        assert!(few.minimum_pf() > planner().minimum_pf());
    }

    #[test]
    fn initiator_prefers_cheaper_compliant_contract() {
        let p = planner();
        let anon = InitiatorUtility::new(1000.0, 10.0);
        let cheap = p.plan(BundleId(0), NodeId(1), 1.0);
        let lavish = Contract::from_tau(BundleId(0), NodeId(1), 100.0, 4.0);
        // At equal expected set size the minimal contract dominates.
        assert!(p.initiator_utility(&cheap, &anon, 5.0) > p.initiator_utility(&lavish, &anon, 5.0));
    }

    #[test]
    #[should_panic(expected = "margin must be >= 1")]
    fn planner_rejects_sub_unity_margin() {
        let p = ContractPlanner {
            margin: 0.5,
            ..planner()
        };
        let _ = p.minimum_pf();
    }
}
