//! Next-hop selection (§2.2, §2.4).
//!
//! A forwarder holding the payload "calculates its utility corresponding to
//! each neighbor q ∈ D(X) and selects the neighbor which gives it the
//! maximum utility as the next hop. Ties are broken by selecting a neighbor
//! with a higher quality." Adversaries route randomly. Termination is
//! Crowds-style (probabilistic) and/or hop-bounded ([`PathPolicy`]) — the
//! responder is *not* a candidate next hop; the coin, not the utility,
//! decides when the payload leaves the forwarding layer, which is how the
//! paper keeps "path lengths which are appropriate for anonymity systems".

use std::collections::HashMap;

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_overlay::NodeId;
use rand::RngExt;

use crate::contract::Contract;
use crate::history::{HistoryProfile, HistoryRead};
use crate::quality::EdgeQuality;
use crate::utility::{model_one_utility, model_two_utility, UtilityModel};

/// The immutable system snapshot a routing decision reads.
///
/// Implemented by the simulator over its churn schedules, probe estimators
/// and cost model; implemented over fixtures in tests.
pub trait RoutingView {
    /// Neighbors of `s` currently alive (the candidate forwarders).
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId>;
    /// Buffer-reusing variant of [`RoutingView::live_neighbors`]: clears
    /// `out` and fills it with the live neighbors of `s`. The routing hot
    /// path calls this so no `Vec` is allocated per hop; implementors that
    /// can filter in place should override the default (which delegates to
    /// `live_neighbors` for compatibility).
    fn live_neighbors_into(&self, s: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.live_neighbors(s));
    }
    /// `α_s(v)`: availability of `v` as estimated by `s` (§2.3).
    fn availability(&self, s: NodeId, v: NodeId) -> f64;
    /// `ρ_s(v)`: reputation of `v` as observed by the deciding initiator
    /// ([`crate::reputation::EdgeReputation::score`]). Only read when the
    /// quality model's reputation weight `w_r` is non-zero; the default is
    /// the clean-ledger score 1 (views without a fault ledger).
    fn reputation(&self, _s: NodeId, _v: NodeId) -> f64 {
        1.0
    }
    /// Transmission cost `C^t(s, v)` for one forwarding instance.
    fn transmission_cost(&self, s: NodeId, v: NodeId) -> f64;
    /// Participation cost `C^p` of `s`.
    fn participation_cost(&self, s: NodeId) -> f64;
}

/// Reusable scratch state for routing decisions: candidate buffers shared
/// across hops plus the per-transmission memo caches that de-duplicate
/// work inside model II's exponential lookahead.
///
/// One transmission (one connection being formed) reads a fixed snapshot —
/// histories are updated only after the confirmation returns, and the
/// liveness view is fixed at the transmission's timestamp — so edge
/// qualities `q(s, v)` and continuation values memoised during the
/// transmission stay valid across all of its hops. Callers own one scratch
/// (per run, or per connection) and call
/// [`RouteScratch::begin_transmission`] whenever the underlying snapshot
/// may have changed.
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Candidate next hops for the current decision.
    candidates: Vec<NodeId>,
    /// Colluding subset of the candidates (adversary routing).
    colluders: Vec<NodeId>,
    /// One neighbor buffer per lookahead depth, reused across the tree.
    neighbor_bufs: Vec<Vec<NodeId>>,
    /// DFS path of the lookahead (loop avoidance).
    visited: Vec<NodeId>,
    /// Order-independent fingerprint of `visited` (XOR of per-node
    /// SplitMix64 hashes), the memo key component for continuations.
    visited_fp: u64,
    /// Memo: pre-mixed `(s, v)` key `-> q(s, v)` for this transmission.
    edge_q: HashMap<u64, f64, PremixedState>,
    /// Memo: pre-mixed `(from, depth, visited fingerprint)` key
    /// `-> (sum, edges)` of the best continuation.
    cont: HashMap<u64, (f64, usize), PremixedState>,
}

/// Build-hasher for keys that are already SplitMix64-mixed `u64`s: the
/// hash *is* the key. A tuple key under the default SipHash state costs
/// more than the memoised computation it replaces; identity hashing keeps
/// a cache probe at a few nanoseconds.
#[derive(Debug, Default, Clone)]
struct PremixedState;

#[derive(Debug)]
struct PremixedHasher(u64);

impl std::hash::Hasher for PremixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("premixed maps only hash u64 keys")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl std::hash::BuildHasher for PremixedState {
    type Hasher = PremixedHasher;
    fn build_hasher(&self) -> PremixedHasher {
        PremixedHasher(0)
    }
}

/// Mixed key for the edge memo.
fn edge_key(s: NodeId, v: NodeId) -> u64 {
    splitmix64(((s.index() as u64) << 32) | v.index() as u64)
}

/// Mixed key for the continuation memo: the visited fingerprint is
/// already mixed, the `(from, depth)` pair is mixed in.
fn cont_key(from: NodeId, depth: u8, visited_fp: u64) -> u64 {
    visited_fp ^ splitmix64(((from.index() as u64) << 8) | u64::from(depth))
}

/// SplitMix64 finaliser (Stafford mix 13).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RouteScratch {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// Invalidates the memo caches. Call at the start of every
    /// transmission (or whenever histories or the liveness snapshot
    /// change); buffers stay allocated.
    pub fn begin_transmission(&mut self) {
        self.edge_q.clear();
        self.cont.clear();
    }

    fn reset_visited(&mut self) {
        self.visited.clear();
        self.visited_fp = 0;
    }

    fn push_visited(&mut self, v: NodeId) {
        self.visited.push(v);
        self.visited_fp ^= node_fingerprint(v);
    }

    fn pop_visited(&mut self) {
        if let Some(v) = self.visited.pop() {
            self.visited_fp ^= node_fingerprint(v);
        }
    }

    fn take_neighbor_buf(&mut self, depth: usize) -> Vec<NodeId> {
        while self.neighbor_bufs.len() <= depth {
            self.neighbor_bufs.push(Vec::new());
        }
        std::mem::take(&mut self.neighbor_bufs[depth])
    }

    fn put_neighbor_buf(&mut self, depth: usize, buf: Vec<NodeId>) {
        self.neighbor_bufs[depth] = buf;
    }
}

/// SplitMix64 finaliser over the node index — the per-node hash XORed into
/// the visited-set fingerprint.
fn node_fingerprint(v: NodeId) -> u64 {
    splitmix64(v.index() as u64)
}

/// How a node routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingStrategy {
    /// Uniform random next hop — the adversary model, and the baseline the
    /// paper compares against in Figs. 5–7.
    Random,
    /// Utility-maximising under the given model — the selfish-rational
    /// strategy the incentive mechanism rewards.
    Utility(UtilityModel),
}

/// How malicious nodes route (the paper's base model is random routing;
/// collusion is the §4-motivated strengthening where colluders steer
/// traffic to each other to capture payments and observations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdversaryStrategy {
    /// Uniform random next hop (§2.4's adversary model).
    #[default]
    Random,
    /// Prefer a colluding (malicious) neighbor uniformly at random; fall
    /// back to uniform random when no colluder is a live candidate.
    Colluding,
}

/// How a path decides to stop extending (§2.2: "both Crowds like
/// probabilistic forwarding and hop-distance based forwarding are
/// applicable to our model").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Crowds coin: after the unconditional first hop, forward again with
    /// this probability, else deliver to R.
    Crowds {
        /// Forwarding probability per hop, in `[0, 1)`.
        p_forward: f64,
    },
    /// Hop-distance: extend to exactly this many forwarder hops (fewer
    /// only when no candidate exists), then deliver.
    HopDistance {
        /// Target number of forwarder hops (≥ 1).
        length: u32,
    },
}

/// Termination policy for path formation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathPolicy {
    /// The termination rule.
    pub termination: Termination,
    /// Hard hop bound (applies to both modes).
    pub max_hops: u32,
}

impl PathPolicy {
    /// Crowds-style policy; `p_forward ∈ [0, 1)`.
    #[must_use]
    pub fn new(p_forward: f64, max_hops: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&p_forward),
            "p_forward must be in [0,1), got {p_forward}"
        );
        assert!(max_hops >= 1, "need at least one hop");
        PathPolicy {
            termination: Termination::Crowds { p_forward },
            max_hops,
        }
    }

    /// Hop-distance policy: paths of exactly `length` forwarder hops.
    #[must_use]
    pub fn hop_distance(length: u32) -> Self {
        assert!(length >= 1, "need at least one hop");
        PathPolicy {
            termination: Termination::HopDistance { length },
            max_hops: length,
        }
    }

    /// The paper-calibrated default: mean path length 4 (`p = 0.75`),
    /// bounded at 8 hops.
    #[must_use]
    pub fn default_crowds() -> Self {
        PathPolicy::new(0.75, 8)
    }

    /// Expected number of forwarder hops (ignoring the hop bound and
    /// candidate exhaustion).
    #[must_use]
    pub fn expected_hops(&self) -> f64 {
        match self.termination {
            Termination::Crowds { p_forward } => 1.0 / (1.0 - p_forward),
            Termination::HopDistance { length } => f64::from(length),
        }
    }

    /// Whether the path should attempt another hop, given the hops so far
    /// and a uniform draw in `[0, 1)` for the Crowds coin.
    #[must_use]
    pub fn wants_another_hop(&self, hops_so_far: usize, coin: f64) -> bool {
        if hops_so_far >= self.max_hops as usize {
            return false;
        }
        match self.termination {
            // First hop unconditional, as in Crowds.
            Termination::Crowds { p_forward } => hops_so_far == 0 || coin < p_forward,
            Termination::HopDistance { length } => hops_so_far < length as usize,
        }
    }
}

/// A next-hop decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopChoice {
    /// The chosen neighbor.
    pub next: NodeId,
    /// The utility the chooser assigned (for diagnostics; `NaN` for random
    /// routing, which does not evaluate utilities).
    pub utility: f64,
    /// The edge quality `q` the chooser saw.
    pub quality: f64,
}

/// Computes `q(s, v)` from the chooser's history profile and availability
/// view: `w_s·σ(s,v) + w_a·α_s(v)`.
#[must_use]
pub fn edge_quality_of(
    s: NodeId,
    v: NodeId,
    contract: &Contract,
    priors: u32,
    history: &HistoryProfile,
    view: &impl RoutingView,
    quality: &EdgeQuality,
) -> f64 {
    let sigma = history.selectivity(contract.bundle, priors, v);
    let alpha = view.availability(s, v);
    quality.edge(sigma, alpha)
}

/// Memoised `q(s, v)`: looks the edge up in the transmission cache and
/// computes it from the history store on a miss. Generic over the storage
/// layout ([`HistoryRead`]): flat profile vector, sharded arena view, or
/// worker-local bundle mirror.
#[allow(clippy::too_many_arguments)]
fn edge_quality_memo<H: HistoryRead + ?Sized>(
    s: NodeId,
    v: NodeId,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
    scratch: &mut RouteScratch,
) -> f64 {
    let key = edge_key(s, v);
    if let Some(&q) = scratch.edge_q.get(&key) {
        return q;
    }
    let sigma = histories.selectivity_at(s, contract.bundle, priors, v);
    // The two-term branch never reads ρ and evaluates the exact paper
    // expression, so w_r = 0 runs are bit-identical to the pre-reputation
    // build (fingerprint-pinned).
    let q = if quality.uses_reputation() {
        quality.edge_with_reputation(sigma, view.availability(s, v), view.reputation(s, v))
    } else {
        quality.edge(sigma, view.availability(s, v))
    };
    scratch.edge_q.insert(key, q);
    q
}

/// Picks the next hop at node `s` (which may be the initiator).
///
/// Candidates are the live neighbors of `s`, excluding the responder (the
/// termination coin in [`PathPolicy`] decides delivery) and excluding `s`
/// itself. Returns `None` when no candidate exists **or** (for utility
/// strategies) when every candidate yields negative utility — the rational
/// node declines to extend the path, and the caller delivers to R.
///
/// Allocation-free wrapper-compatible variant: reuses the candidate buffer
/// and memo caches in `scratch`. The caller is responsible for calling
/// [`RouteScratch::begin_transmission`] when the snapshot changes.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn choose_next_hop_with<H: HistoryRead + ?Sized>(
    scratch: &mut RouteScratch,
    s: NodeId,
    strategy: RoutingStrategy,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
    rng: &mut Xoshiro256StarStar,
) -> Option<HopChoice> {
    let mut candidates = std::mem::take(&mut scratch.candidates);
    view.live_neighbors_into(s, &mut candidates);
    candidates.retain(|&v| v != contract.responder && v != s);
    let choice = if candidates.is_empty() {
        None
    } else {
        match strategy {
            RoutingStrategy::Random => {
                let next = candidates[rng.random_range(0..candidates.len())];
                Some(HopChoice {
                    next,
                    utility: f64::NAN,
                    quality: f64::NAN,
                })
            }
            RoutingStrategy::Utility(model) => {
                let cp = view.participation_cost(s);
                let mut best: Option<HopChoice> = None;
                for &v in &candidates {
                    let q_edge = edge_quality_memo(
                        s, v, contract, priors, histories, view, quality, scratch,
                    );
                    let ct = view.transmission_cost(s, v);
                    let (u, q_seen) = match model {
                        UtilityModel::ModelI => (
                            model_one_utility(contract.pf, contract.pr, q_edge, cp, ct),
                            q_edge,
                        ),
                        UtilityModel::ModelII { lookahead } => {
                            let q_path = continuation_quality_with(
                                scratch, s, v, q_edge, lookahead, contract, priors, histories,
                                view, quality,
                            );
                            (
                                model_two_utility(contract.pf, contract.pr, q_path, cp, ct),
                                q_path,
                            )
                        }
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            u > b.utility + 1e-12
                                // Paper's tie-break: higher quality wins.
                                || ((u - b.utility).abs() <= 1e-12 && q_seen > b.quality)
                        }
                    };
                    if better {
                        best = Some(HopChoice {
                            next: v,
                            utility: u,
                            quality: q_seen,
                        });
                    }
                }
                // A rational node does not extend the path at a loss.
                best.filter(|b| b.utility >= 0.0)
            }
        }
    };
    scratch.candidates = candidates;
    choice
}

/// Picks the next hop at node `s`, allocating fresh scratch state.
///
/// Convenience wrapper over [`choose_next_hop_with`] for one-off decisions
/// (tests, interactive probing). Hot paths should hold a [`RouteScratch`]
/// and call the `_with` variant instead.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn choose_next_hop<H: HistoryRead + ?Sized>(
    s: NodeId,
    strategy: RoutingStrategy,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
    rng: &mut Xoshiro256StarStar,
) -> Option<HopChoice> {
    let mut scratch = RouteScratch::new();
    choose_next_hop_with(
        &mut scratch,
        s,
        strategy,
        contract,
        priors,
        histories,
        view,
        quality,
        rng,
    )
}

/// Picks the next hop for a **colluding** malicious node: a uniformly
/// random malicious live neighbor if any exists, else uniformly random
/// among all candidates (the base adversary behaviour). Buffer-reusing
/// variant.
#[must_use]
pub fn choose_next_hop_colluding_with(
    scratch: &mut RouteScratch,
    s: NodeId,
    contract: &Contract,
    kinds: &[idpa_overlay::NodeKind],
    view: &impl RoutingView,
    rng: &mut Xoshiro256StarStar,
) -> Option<HopChoice> {
    let candidates = &mut scratch.candidates;
    view.live_neighbors_into(s, candidates);
    candidates.retain(|&v| v != contract.responder && v != s);
    if candidates.is_empty() {
        return None;
    }
    let colluders = &mut scratch.colluders;
    colluders.clear();
    colluders.extend(
        candidates
            .iter()
            .copied()
            .filter(|v| !kinds[v.index()].is_good()),
    );
    let pool: &[NodeId] = if colluders.is_empty() {
        candidates
    } else {
        colluders
    };
    let next = pool[rng.random_range(0..pool.len())];
    Some(HopChoice {
        next,
        utility: f64::NAN,
        quality: f64::NAN,
    })
}

/// Colluding next-hop choice with fresh scratch state; see
/// [`choose_next_hop_colluding_with`].
#[must_use]
pub fn choose_next_hop_colluding(
    s: NodeId,
    contract: &Contract,
    kinds: &[idpa_overlay::NodeKind],
    view: &impl RoutingView,
    rng: &mut Xoshiro256StarStar,
) -> Option<HopChoice> {
    let mut scratch = RouteScratch::new();
    choose_next_hop_colluding_with(&mut scratch, s, contract, kinds, view, rng)
}

/// Model II's continuation-path quality `q(π(s, j, R))`, normalised to
/// `[0, 1]`.
///
/// Evaluated by depth-limited backward induction over the live neighbor
/// graph (the §2.4.3 L-stage game under full information): the value of
/// standing at `j` with `depth` stages to go is the best of delivering now
/// (the responder edge, quality 1) or forwarding over the best-quality edge
/// and continuing. The total is divided by the number of edges it contains,
/// keeping model II's quality on the same `[0, 1]` scale as model I's.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn continuation_quality<H: HistoryRead + ?Sized>(
    s: NodeId,
    j: NodeId,
    q_first_edge: f64,
    lookahead: u8,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
) -> f64 {
    let mut scratch = RouteScratch::new();
    continuation_quality_with(
        &mut scratch,
        s,
        j,
        q_first_edge,
        lookahead,
        contract,
        priors,
        histories,
        view,
        quality,
    )
}

/// Memoised, buffer-reusing variant of [`continuation_quality`]: the
/// continuation values and edge qualities computed during the backward
/// induction are cached in `scratch` and shared across all hops of one
/// transmission.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn continuation_quality_with<H: HistoryRead + ?Sized>(
    scratch: &mut RouteScratch,
    s: NodeId,
    j: NodeId,
    q_first_edge: f64,
    lookahead: u8,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
) -> f64 {
    scratch.reset_visited();
    scratch.push_visited(s);
    scratch.push_visited(j);
    let (total, edges) = continuation_rec(
        j,
        lookahead.saturating_sub(1),
        contract,
        priors,
        histories,
        view,
        quality,
        scratch,
    );
    (q_first_edge + total) / (1.0 + edges as f64)
}

/// Returns `(sum of edge qualities to R, number of edges counted)` for the
/// best continuation from `from`, including the final responder edge.
///
/// During lookahead a node is assumed to *forward* whenever it has a live
/// candidate (the Crowds coin keeps paths going with probability
/// `p_forward` regardless of utilities); delivery to R happens only at the
/// lookahead horizon or at a dead end. Without this, the fixed-quality-1
/// responder edge would dominate every comparison and model II would
/// degenerate to model I.
///
/// Subtrees are memoised on `(from, depth, visited-set fingerprint)`: the
/// value of a node at a given depth depends only on which nodes the path
/// already excludes (as a set — order is irrelevant), so identical states
/// reached through different branches are computed once per transmission.
#[allow(clippy::too_many_arguments)]
fn continuation_rec<H: HistoryRead + ?Sized>(
    from: NodeId,
    depth: u8,
    contract: &Contract,
    priors: u32,
    histories: &H,
    view: &impl RoutingView,
    quality: &EdgeQuality,
    scratch: &mut RouteScratch,
) -> (f64, usize) {
    // Delivery to R: one final edge of fixed quality 1.
    let deliver = (quality.responder_edge(), 1usize);
    if depth == 0 {
        return deliver;
    }
    let key = cont_key(from, depth, scratch.visited_fp);
    if let Some(&hit) = scratch.cont.get(&key) {
        return hit;
    }
    let mut neighbors = scratch.take_neighbor_buf(depth as usize);
    view.live_neighbors_into(from, &mut neighbors);
    let mut best: Option<(f64, usize)> = None;
    let mut best_avg = f64::NEG_INFINITY;
    for &v in &neighbors {
        if v == contract.responder || scratch.visited.contains(&v) {
            continue;
        }
        let q_edge =
            edge_quality_memo(from, v, contract, priors, histories, view, quality, scratch);
        scratch.push_visited(v);
        let (tail_sum, tail_edges) = continuation_rec(
            v,
            depth - 1,
            contract,
            priors,
            histories,
            view,
            quality,
            scratch,
        );
        scratch.pop_visited();
        let cand = (q_edge + tail_sum, 1 + tail_edges);
        let cand_avg = cand.0 / cand.1 as f64;
        if cand_avg > best_avg + 1e-12 {
            best = Some(cand);
            best_avg = cand_avg;
        }
    }
    scratch.put_neighbor_buf(depth as usize, neighbors);
    // Dead end: forced delivery.
    let result = best.unwrap_or(deliver);
    scratch.cont.insert(key, result);
    result
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::bundle::BundleId;
    use crate::quality::Weights;
    use std::collections::HashMap;

    /// A fixture view over explicit tables.
    struct FixtureView {
        neighbors: HashMap<NodeId, Vec<NodeId>>,
        availability: HashMap<(NodeId, NodeId), f64>,
        cost: f64,
        cp: f64,
    }

    impl FixtureView {
        fn new(cost: f64, cp: f64) -> Self {
            FixtureView {
                neighbors: HashMap::new(),
                availability: HashMap::new(),
                cost,
                cp,
            }
        }
        fn with_neighbors(mut self, s: usize, nbrs: &[usize]) -> Self {
            self.neighbors
                .insert(NodeId(s), nbrs.iter().map(|&i| NodeId(i)).collect());
            self
        }
        fn with_availability(mut self, s: usize, v: usize, a: f64) -> Self {
            self.availability.insert((NodeId(s), NodeId(v)), a);
            self
        }
    }

    impl RoutingView for FixtureView {
        fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
            self.neighbors.get(&s).cloned().unwrap_or_default()
        }
        fn availability(&self, s: NodeId, v: NodeId) -> f64 {
            self.availability.get(&(s, v)).copied().unwrap_or(0.0)
        }
        fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
            self.cost
        }
        fn participation_cost(&self, _: NodeId) -> f64 {
            self.cp
        }
    }

    fn contract() -> Contract {
        Contract::new(BundleId(0), NodeId(99), 50.0, 100.0)
    }

    fn histories(n: usize) -> Vec<HistoryProfile> {
        (0..n).map(|i| HistoryProfile::new(NodeId(i))).collect()
    }

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn quality() -> EdgeQuality {
        EdgeQuality::new(Weights::balanced())
    }

    #[test]
    fn utility_routing_picks_highest_availability() {
        // No history yet: quality reduces to availability.
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2, 3])
            .with_availability(0, 1, 0.2)
            .with_availability(0, 2, 0.7)
            .with_availability(0, 3, 0.1);
        let h = histories(4);
        let c = contract();
        let choice = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(1),
        )
        .unwrap();
        assert_eq!(choice.next, NodeId(2));
        // U = 50 + (0.5*0 + 0.5*0.7)*100 - (1+1) = 50 + 35 - 2 = 83
        assert!((choice.utility - 83.0).abs() < 1e-9);
    }

    #[test]
    fn history_pulls_choice_toward_previously_used_edge() {
        // Availability slightly favours node 2, but node 1 carried the
        // previous connections of this bundle.
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2])
            .with_availability(0, 1, 0.5)
            .with_availability(0, 2, 0.6);
        let mut h = histories(3);
        for conn in 0..4 {
            h[0].record(BundleId(0), conn, NodeId(9), NodeId(1));
        }
        let c = contract();
        let choice = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            4,
            &h,
            &view,
            &quality(),
            &mut rng(2),
        )
        .unwrap();
        // q(0,1) = 0.5*1.0 + 0.5*0.5 = 0.75 > q(0,2) = 0.5*0 + 0.5*0.6 = 0.3
        assert_eq!(choice.next, NodeId(1));
    }

    #[test]
    fn responder_excluded_from_candidates() {
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[99])
            .with_availability(0, 99, 1.0);
        let h = histories(100);
        let c = contract();
        let choice = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(3),
        );
        assert!(choice.is_none(), "only candidate was the responder");
    }

    #[test]
    fn no_live_neighbors_returns_none() {
        let view = FixtureView::new(1.0, 1.0).with_neighbors(0, &[]);
        let h = histories(1);
        let c = contract();
        for strategy in [
            RoutingStrategy::Random,
            RoutingStrategy::Utility(UtilityModel::ModelI),
        ] {
            assert!(choose_next_hop(
                NodeId(0),
                strategy,
                &c,
                0,
                &h,
                &view,
                &quality(),
                &mut rng(4),
            )
            .is_none());
        }
    }

    #[test]
    fn negative_utility_declines() {
        // Costs dwarf benefits: the rational node refuses to extend.
        let view = FixtureView::new(500.0, 500.0)
            .with_neighbors(0, &[1])
            .with_availability(0, 1, 1.0);
        let h = histories(2);
        let c = contract();
        let choice = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(5),
        );
        assert!(choice.is_none());
    }

    #[test]
    fn random_routing_ignores_quality() {
        // Over many draws, random routing must pick the low-availability
        // node about half the time.
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2])
            .with_availability(0, 1, 0.0)
            .with_availability(0, 2, 1.0);
        let h = histories(3);
        let c = contract();
        let mut r = rng(6);
        let picks_low = (0..2000)
            .filter(|_| {
                choose_next_hop(
                    NodeId(0),
                    RoutingStrategy::Random,
                    &c,
                    0,
                    &h,
                    &view,
                    &quality(),
                    &mut r,
                )
                .unwrap()
                .next
                    == NodeId(1)
            })
            .count();
        assert!((800..1200).contains(&picks_low), "picks_low={picks_low}");
    }

    #[test]
    fn ties_break_to_higher_quality() {
        // Same utility by construction is impossible with different q here,
        // so engineer equal utilities: q difference compensated by cost
        // difference is not possible with constant cost — instead give two
        // candidates identical availability; the first encountered wins
        // only if quality ties too.
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2])
            .with_availability(0, 1, 0.4)
            .with_availability(0, 2, 0.4);
        let h = histories(3);
        let c = contract();
        let choice = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(7),
        )
        .unwrap();
        // Exact tie in both utility and quality: first candidate retained.
        assert_eq!(choice.next, NodeId(1));
    }

    #[test]
    fn model_two_sees_through_a_good_relay() {
        // Topology: 0 -> {1, 2}. The immediate edge to 2 is slightly
        // better (model I picks it), but 2's onward neighborhood is
        // terrible while 1's is excellent — model II must pick 1.
        // q(0,1) = 0.25, continuation 1->3 has q = 0.5:   avg (0.25+0.5+1)/3 ≈ 0.583
        // q(0,2) = 0.30, continuation 2->4 has q = 0.025: avg (0.30+0.025+1)/3 ≈ 0.442
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2])
            .with_neighbors(1, &[3])
            .with_neighbors(2, &[4])
            .with_availability(0, 1, 0.5)
            .with_availability(0, 2, 0.6)
            .with_availability(1, 3, 1.0)
            .with_availability(2, 4, 0.05);
        let h = histories(5);
        let c = contract();
        let model2 = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 3 }),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(8),
        )
        .unwrap();
        let model1 = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(8),
        )
        .unwrap();
        assert_eq!(model1.next, NodeId(2), "model I is myopic");
        assert_eq!(model2.next, NodeId(1), "model II looks ahead");
    }

    #[test]
    fn continuation_quality_in_unit_interval() {
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1])
            .with_neighbors(1, &[2])
            .with_neighbors(2, &[0])
            .with_availability(0, 1, 0.9)
            .with_availability(1, 2, 0.8)
            .with_availability(2, 0, 0.7);
        let h = histories(3);
        let c = contract();
        for lookahead in 1..=5 {
            let q = continuation_quality(
                NodeId(0),
                NodeId(1),
                0.5,
                lookahead,
                &c,
                0,
                &h,
                &view,
                &quality(),
            );
            assert!((0.0..=1.0).contains(&q), "lookahead {lookahead}: q={q}");
        }
    }

    #[test]
    fn lookahead_one_degenerates_to_model_one_choice() {
        let view = FixtureView::new(1.0, 1.0)
            .with_neighbors(0, &[1, 2])
            .with_availability(0, 1, 0.3)
            .with_availability(0, 2, 0.8);
        let h = histories(3);
        let c = contract();
        let m1 = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelI),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(9),
        )
        .unwrap();
        let m2 = choose_next_hop(
            NodeId(0),
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 1 }),
            &c,
            0,
            &h,
            &view,
            &quality(),
            &mut rng(9),
        )
        .unwrap();
        assert_eq!(m1.next, m2.next);
    }

    #[test]
    fn path_policy_expected_hops() {
        let p = PathPolicy::new(0.75, 8);
        assert!((p.expected_hops() - 4.0).abs() < 1e-12);
        assert_eq!(PathPolicy::default_crowds().max_hops, 8);
    }

    #[test]
    #[should_panic(expected = "p_forward must be in")]
    fn policy_rejects_certain_forwarding() {
        let _ = PathPolicy::new(1.0, 8);
    }
}
