//! Cross-shard equivalence property suite (PR 4).
//!
//! Drives the sharded [`HistoryArena`] and the flat
//! `Vec<HistoryProfile>` oracle through the same randomized schedule of
//! interleaved bundle commits — mixing full-path commits, dropped-
//! confirmation *suffix* commits (the fault layer commits only the hops
//! after the last confirmed position), and both arena write modes
//! (`exclusive` and `lock_path`) — then asserts that every selectivity
//! index the router could consult agrees **bit-for-bit** across:
//!
//! * the oracle profiles,
//! * the arena's zero-lock `exclusive()` view,
//! * the arena's shared `read()` view, and
//! * per-bundle [`BundleMirror`]s fed the same records.
//!
//! 256 seeded cases randomize node count, shard count (including counts
//! above `n_nodes`, exercising the clamp), bounded/unbounded history
//! capacity, bundle count, path shapes, and commit interleaving. A final
//! test commits disjoint bundles from concurrent threads via
//! `lock_path` and checks the result matches a sequential replay.

use idpa_core::bundle::BundleId;
use idpa_core::history::{HistoryProfile, HistoryRead, HistoryWrite};
use idpa_core::{BundleMirror, HistoryArena};
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_overlay::NodeId;
use rand::RngExt;

/// One committed connection: bundle, connection index, and the hop
/// records `(node, predecessor, successor)` actually applied (already
/// suffix-trimmed when the case simulates a dropped confirmation).
struct Commit {
    bundle: usize,
    connection: u32,
    hops: Vec<(NodeId, NodeId, NodeId)>,
}

/// Samples a random hop chain and trims it to a suffix with probability
/// ~1/4, mirroring `PendingConnection::commit_suffix` semantics.
fn sample_commit(
    rng: &mut Xoshiro256StarStar,
    n_nodes: usize,
    bundle: usize,
    connection: u32,
) -> Commit {
    let len = rng.random_range(2..6usize);
    let chain: Vec<NodeId> = (0..len)
        .map(|_| NodeId(rng.random_range(0..n_nodes)))
        .collect();
    let mut hops: Vec<(NodeId, NodeId, NodeId)> = Vec::new();
    for i in 1..len.saturating_sub(1) {
        hops.push((chain[i], chain[i - 1], chain[i + 1]));
    }
    if !hops.is_empty() && rng.random_range(0..4u32) == 0 {
        let start = rng.random_range(0..=hops.len());
        hops.drain(..start);
    }
    Commit {
        bundle,
        connection,
        hops,
    }
}

fn apply<H: HistoryWrite + ?Sized>(h: &mut H, commit: &Commit) {
    for &(node, pred, succ) in &commit.hops {
        h.record_hop(
            node,
            BundleId(commit.bundle as u64),
            commit.connection,
            pred,
            succ,
        );
    }
}

/// Asserts every selectivity the router could ask for is bit-equal
/// between the oracle and a [`HistoryRead`] implementation.
fn assert_reads_agree<H: HistoryRead + ?Sized>(
    oracle: &[HistoryProfile],
    got: &H,
    n_nodes: usize,
    n_bundles: usize,
    priors_by_bundle: &[u32],
    label: &str,
) {
    for s in 0..n_nodes {
        for (b, &bundle_priors) in priors_by_bundle.iter().enumerate().take(n_bundles) {
            let bundle = BundleId(b as u64);
            for priors in [0, bundle_priors, bundle_priors + 3] {
                for v in 0..n_nodes {
                    let (s, v) = (NodeId(s), NodeId(v));
                    let want = oracle.selectivity_at(s, bundle, priors, v);
                    let have = got.selectivity_at(s, bundle, priors, v);
                    assert_eq!(
                        want.to_bits(),
                        have.to_bits(),
                        "{label}: selectivity({s:?}, {bundle:?}, {priors}, {v:?}) \
                         expected {want} got {have}"
                    );
                    let pred = NodeId(v.index().wrapping_mul(7) % n_nodes);
                    let want = oracle.selectivity_from_at(s, bundle, priors, pred, v);
                    let have = got.selectivity_from_at(s, bundle, priors, pred, v);
                    assert_eq!(
                        want.to_bits(),
                        have.to_bits(),
                        "{label}: selectivity_from({s:?}, {bundle:?}, {priors}, {pred:?}, {v:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn randomized_interleaved_commits_agree_across_all_views() {
    const CASES: u64 = 256;
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x5eed_0000 ^ case);
        let n_nodes = rng.random_range(3..24usize);
        // Deliberately allow shard counts above n_nodes: the arena clamps.
        let shards = rng.random_range(1..n_nodes + 6);
        let capacity = if rng.random_range(0..2u32) == 0 {
            None
        } else {
            Some(rng.random_range(1..5usize))
        };
        let n_bundles = rng.random_range(1..4usize);

        let mut oracle: Vec<HistoryProfile> = (0..n_nodes)
            .map(|i| match capacity {
                Some(cap) => HistoryProfile::with_capacity(NodeId(i), cap),
                None => HistoryProfile::new(NodeId(i)),
            })
            .collect();
        let mut arena = HistoryArena::with_capacity(n_nodes, shards, capacity);
        let mut mirrors: Vec<BundleMirror> = (0..n_bundles)
            .map(|b| BundleMirror::new(BundleId(b as u64), capacity))
            .collect();

        let mut next_conn = vec![0u32; n_bundles];
        let steps = rng.random_range(6..32usize);
        for _ in 0..steps {
            let b = rng.random_range(0..n_bundles);
            let conn = next_conn[b];
            next_conn[b] += 1;
            let commit = sample_commit(&mut rng, n_nodes, b, conn);

            apply(&mut oracle, &commit);
            apply(&mut mirrors[b], &commit);
            if rng.random_range(0..2u32) == 0 {
                apply(&mut arena.exclusive(), &commit);
            } else {
                let mut guards = arena.lock_path(commit.hops.iter().map(|&(n, _, _)| n));
                apply(&mut guards, &commit);
            }
        }

        let label = format!("case {case} (n={n_nodes} shards={shards} cap={capacity:?})");
        assert_reads_agree(
            &oracle,
            &arena.read(),
            n_nodes,
            n_bundles,
            &next_conn,
            &format!("{label} via read()"),
        );
        assert_reads_agree(
            &oracle,
            &arena.exclusive(),
            n_nodes,
            n_bundles,
            &next_conn,
            &format!("{label} via exclusive()"),
        );
        for (b, mirror) in mirrors.iter().enumerate() {
            // The mirror only answers for its own bundle; restrict the
            // sweep by handing it a single-bundle view of the oracle.
            let bundle = BundleId(b as u64);
            for s in 0..n_nodes {
                for v in 0..n_nodes {
                    let (s, v) = (NodeId(s), NodeId(v));
                    let priors = next_conn[b];
                    let want = oracle.selectivity_at(s, bundle, priors, v);
                    let have = mirror.selectivity_at(s, bundle, priors, v);
                    assert_eq!(
                        want.to_bits(),
                        have.to_bits(),
                        "{label}: mirror bundle {b} selectivity diverged"
                    );
                }
            }
        }

        // Stored records themselves must match, not just derived indexes.
        for (i, node_oracle) in oracle.iter().enumerate().take(n_nodes) {
            for b in 0..n_bundles {
                let bundle = BundleId(b as u64);
                assert_eq!(
                    arena.records(NodeId(i), bundle),
                    node_oracle.bundle_records(bundle).to_vec(),
                    "{label}: raw records diverged at node {i} bundle {b}"
                );
            }
        }
    }
}

#[test]
fn concurrent_disjoint_bundle_commits_match_sequential_replay() {
    const N_NODES: usize = 16;
    const N_BUNDLES: usize = 4;
    const CONNS_PER_BUNDLE: u32 = 12;

    // Pre-sample every commit deterministically so both replays see the
    // exact same records.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xc0_ffee);
    let mut commits: Vec<Vec<Commit>> = Vec::new();
    for b in 0..N_BUNDLES {
        commits.push(
            (0..CONNS_PER_BUNDLE)
                .map(|conn| sample_commit(&mut rng, N_NODES, b, conn))
                .collect(),
        );
    }

    let sequential = {
        let mut arena = HistoryArena::new(N_NODES, 5);
        let mut view = arena.exclusive();
        for per_bundle in &commits {
            for commit in per_bundle {
                apply(&mut view, commit);
            }
        }
        drop(view);
        arena
    };

    let threaded = HistoryArena::new(N_NODES, 5);
    std::thread::scope(|scope| {
        for per_bundle in &commits {
            let arena = &threaded;
            scope.spawn(move || {
                for commit in per_bundle {
                    let mut guards = arena.lock_path(commit.hops.iter().map(|&(n, _, _)| n));
                    apply(&mut guards, commit);
                }
            });
        }
    });

    for i in 0..N_NODES {
        for b in 0..N_BUNDLES {
            let bundle = BundleId(b as u64);
            assert_eq!(
                threaded.records(NodeId(i), bundle),
                sequential.records(NodeId(i), bundle),
                "threaded commit diverged at node {i} bundle {b}"
            );
        }
    }
}
