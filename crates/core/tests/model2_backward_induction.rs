//! Model II semantics check: `continuation_quality` must equal the value of
//! an independently written backward induction over the §2.4.3 L-stage
//! game. The SPNE structure matters: each subsequent mover maximises *its
//! own* continuation quality (its average edge quality to R), not the
//! first mover's — so the reference solver below recursively solves each
//! subgame by the subgame owner's objective, exactly as backward induction
//! prescribes, and the production code must agree with it on every
//! (seed, lookahead, candidate) triple.

use idpa_core::bundle::BundleId;
use idpa_core::contract::Contract;
use idpa_core::history::HistoryProfile;
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::routing::{continuation_quality, RoutingView};
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_overlay::{NodeId, Topology};
use rand::RngExt;

/// A random static overlay with per-edge availabilities.
struct Fixture {
    topology: Topology,
    avail: Vec<Vec<f64>>, // avail[s][v]
}

impl Fixture {
    fn random(n: usize, degree: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let topology = Topology::random(n, degree, &mut rng);
        let avail = (0..n)
            .map(|_| (0..n).map(|_| rng.random_range(0.0..1.0)).collect())
            .collect();
        Fixture { topology, avail }
    }
}

impl RoutingView for Fixture {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        self.topology.neighbors(s).to_vec()
    }
    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        self.avail[s.index()][v.index()]
    }
    fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
        1.0
    }
    fn participation_cost(&self, _: NodeId) -> f64 {
        1.0
    }
}

/// Brute force: the best (sum+responder)/(edges+1) over all simple
/// continuations from `j` (with `s` excluded), forwarding whenever a live
/// candidate exists and the horizon allows.
#[allow(clippy::too_many_arguments)]
fn brute_force(
    fix: &Fixture,
    contract: &Contract,
    quality: &EdgeQuality,
    histories: &[HistoryProfile],
    from: NodeId,
    depth: u8,
    visited: &mut Vec<NodeId>,
) -> (f64, usize) {
    let deliver = (1.0, 1);
    if depth == 0 {
        return deliver;
    }
    let candidates: Vec<NodeId> = fix
        .live_neighbors(from)
        .into_iter()
        .filter(|v| *v != contract.responder && !visited.contains(v))
        .collect();
    if candidates.is_empty() {
        return deliver;
    }
    let mut best = (f64::NEG_INFINITY, 1);
    for v in candidates {
        let sigma = histories[from.index()].selectivity(contract.bundle, 0, v);
        let q = quality.edge(sigma, fix.availability(from, v));
        visited.push(v);
        let (tail, edges) = brute_force(fix, contract, quality, histories, v, depth - 1, visited);
        visited.pop();
        let cand = (q + tail, edges + 1);
        if cand.0 / cand.1 as f64 > best.0 / best.1 as f64 {
            best = cand;
        }
    }
    best
}

#[test]
fn continuation_quality_matches_brute_force_enumeration() {
    for seed in 0..10 {
        let fix = Fixture::random(12, 3, seed);
        let contract = Contract::new(BundleId(0), NodeId(11), 50.0, 100.0);
        let quality = EdgeQuality::new(Weights::balanced());
        let histories: Vec<HistoryProfile> =
            (0..12).map(|i| HistoryProfile::new(NodeId(i))).collect();

        for lookahead in 1..=4u8 {
            for j in fix.live_neighbors(NodeId(0)) {
                if j == contract.responder {
                    continue;
                }
                let sigma = histories[0].selectivity(contract.bundle, 0, j);
                let q_edge = quality.edge(sigma, fix.availability(NodeId(0), j));

                let got = continuation_quality(
                    NodeId(0),
                    j,
                    q_edge,
                    lookahead,
                    &contract,
                    0,
                    &histories,
                    &fix,
                    &quality,
                );

                let mut visited = vec![NodeId(0), j];
                let (tail, edges) = brute_force(
                    &fix,
                    &contract,
                    &quality,
                    &histories,
                    j,
                    lookahead - 1,
                    &mut visited,
                );
                let expect = (q_edge + tail) / (1.0 + edges as f64);

                assert!(
                    (got - expect).abs() < 1e-9,
                    "seed {seed} lookahead {lookahead} j {j}: got {got}, brute {expect}"
                );
            }
        }
    }
}

#[test]
fn deeper_lookahead_never_reduces_information() {
    // Not a value monotonicity claim (averaging can go either way), but the
    // computation must stay within [0, 1] and be deterministic per input.
    let fix = Fixture::random(15, 4, 99);
    let contract = Contract::new(BundleId(0), NodeId(14), 50.0, 100.0);
    let quality = EdgeQuality::new(Weights::balanced());
    let histories: Vec<HistoryProfile> = (0..15).map(|i| HistoryProfile::new(NodeId(i))).collect();
    for la in 1..=5u8 {
        for j in fix.live_neighbors(NodeId(0)) {
            if j == contract.responder {
                continue;
            }
            let q1 = continuation_quality(
                NodeId(0),
                j,
                0.5,
                la,
                &contract,
                0,
                &histories,
                &fix,
                &quality,
            );
            let q2 = continuation_quality(
                NodeId(0),
                j,
                0.5,
                la,
                &contract,
                0,
                &histories,
                &fix,
                &quality,
            );
            assert_eq!(q1, q2, "deterministic");
            assert!((0.0..=1.0).contains(&q1), "bounded: {q1}");
        }
    }
}
