//! Churn: per-node join/leave schedules.
//!
//! §3 of the paper: "A poisson process is used to simulate the joining of
//! nodes" and "the session time of peers is modeled using a Pareto
//! distribution and the median session time is set as 60 mins". §2.1 defines
//! a peer's availability as "the ratio of the sum of its session times to
//! its lifetime, where the lifetime is from the time of the initial entry of
//! the peer node into the system to the time of its final departure".
//!
//! We pre-generate, per node, the full alternating up/down schedule over the
//! simulation horizon. Pre-generation (rather than sampling lazily during
//! the run) is what makes common-random-number comparisons across routing
//! strategies exact: the churn trace is bit-identical for every strategy.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_desim::SimTime;

use crate::dist::{Exponential, Pareto};

/// Parameters of the churn process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Number of peers (the paper uses N = 40).
    pub n_nodes: usize,
    /// Rate of the Poisson join process (nodes per minute). Successive nodes
    /// enter the system at exponential inter-arrival times with this rate.
    pub join_rate: f64,
    /// Median of the Pareto session-time distribution, minutes (paper: 60).
    pub session_median: f64,
    /// Pareto shape (tail index) of session times. Measurement studies of
    /// P2P session times report shapes between 1 and 2; default 1.5.
    pub session_shape: f64,
    /// Mean of the exponential downtime between sessions, minutes.
    pub downtime_mean: f64,
    /// End of the generated schedule, minutes.
    pub horizon: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            n_nodes: 40,
            join_rate: 2.0,
            session_median: 60.0,
            session_shape: 1.5,
            downtime_mean: 30.0,
            horizon: 24.0 * 60.0,
        }
    }
}

impl ChurnConfig {
    /// Validates parameter ranges, panicking with a descriptive message on
    /// nonsense input (zero nodes, non-positive rates, ...).
    pub fn validate(&self) {
        assert!(self.n_nodes > 0, "need at least one node");
        assert!(self.join_rate > 0.0, "join_rate must be positive");
        assert!(self.session_median > 0.0, "session_median must be positive");
        assert!(self.session_shape > 0.0, "session_shape must be positive");
        assert!(self.downtime_mean > 0.0, "downtime_mean must be positive");
        assert!(self.horizon > 0.0, "horizon must be positive");
    }
}

/// One node's alternating up/down schedule: a sorted list of disjoint
/// `[up, down)` intervals clamped to the horizon.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeSchedule {
    sessions: Vec<(f64, f64)>,
}

impl NodeSchedule {
    /// Builds a schedule from explicit intervals; they must be sorted,
    /// disjoint, and well-formed (`start < end`).
    #[must_use]
    pub fn from_sessions(sessions: Vec<(f64, f64)>) -> Self {
        for w in sessions.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "sessions must be sorted and disjoint: {w:?}"
            );
        }
        for &(s, e) in &sessions {
            assert!(s < e, "empty or inverted session ({s}, {e})");
            assert!(s >= 0.0, "negative session start {s}");
        }
        NodeSchedule { sessions }
    }

    /// The `[start, end)` session intervals, sorted.
    #[must_use]
    pub fn sessions(&self) -> &[(f64, f64)] {
        &self.sessions
    }

    /// Whether the node is up at time `t`.
    #[must_use]
    pub fn is_up(&self, t: SimTime) -> bool {
        let t = t.minutes();
        // Sessions are sorted; find the last session starting at or before t.
        match self.sessions.partition_point(|&(s, _)| s <= t) {
            0 => false,
            i => t < self.sessions[i - 1].1,
        }
    }

    /// End of the session containing `t`, or `None` if the node is down at
    /// `t`. Fault injection uses this to truncate a crashed forwarder's
    /// current session: the node stays down from the crash until its next
    /// scheduled join.
    #[must_use]
    pub fn session_end_at(&self, t: SimTime) -> Option<f64> {
        let t = t.minutes();
        match self.sessions.partition_point(|&(s, _)| s <= t) {
            0 => None,
            i => {
                let (_, end) = self.sessions[i - 1];
                (t < end).then_some(end)
            }
        }
    }

    /// First join time, or `None` if the node never came up.
    #[must_use]
    pub fn first_join(&self) -> Option<f64> {
        self.sessions.first().map(|&(s, _)| s)
    }

    /// Final departure time, or `None` if the node never came up.
    #[must_use]
    pub fn final_departure(&self) -> Option<f64> {
        self.sessions.last().map(|&(_, e)| e)
    }

    /// The paper's availability metric: total session time divided by
    /// lifetime (first join to final departure). Zero for a node with no
    /// sessions; 1.0 for a node with a single uninterrupted session.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let (Some(first), Some(last)) = (self.first_join(), self.final_departure()) else {
            return 0.0;
        };
        let lifetime = last - first;
        if lifetime <= 0.0 {
            return 0.0;
        }
        let up: f64 = self.sessions.iter().map(|&(s, e)| e - s).sum();
        up / lifetime
    }

    /// Total time the node is up within `[0, horizon]`.
    #[must_use]
    pub fn uptime(&self) -> f64 {
        self.sessions.iter().map(|&(s, e)| e - s).sum()
    }

    /// The next up/down transition strictly after `t`, if any. Used by the
    /// simulator to schedule join/leave events.
    #[must_use]
    pub fn next_transition_after(&self, t: SimTime) -> Option<f64> {
        let t = t.minutes();
        for &(s, e) in &self.sessions {
            if s > t {
                return Some(s);
            }
            if e > t {
                return Some(e);
            }
        }
        None
    }
}

/// Generator for a full system churn trace.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    config: ChurnConfig,
}

impl ChurnModel {
    /// Creates a churn model over validated configuration.
    #[must_use]
    pub fn new(config: ChurnConfig) -> Self {
        config.validate();
        ChurnModel { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Generates one schedule per node. Node join times form a Poisson
    /// process (exponential inter-arrivals); each node then alternates
    /// Pareto up-periods and exponential down-periods until the horizon.
    #[must_use]
    pub fn generate(&self, rng: &mut Xoshiro256StarStar) -> Vec<NodeSchedule> {
        let cfg = &self.config;
        let join_gap = Exponential::new(cfg.join_rate);
        let session = Pareto::from_median(cfg.session_median, cfg.session_shape);
        let downtime = Exponential::from_mean(cfg.downtime_mean);

        let mut schedules = Vec::with_capacity(cfg.n_nodes);
        let mut arrival = 0.0;
        for _ in 0..cfg.n_nodes {
            arrival += join_gap.sample(rng);
            let mut sessions = Vec::new();
            let mut t = arrival;
            while t < cfg.horizon {
                let up_end = (t + session.sample(rng)).min(cfg.horizon);
                if up_end > t {
                    sessions.push((t, up_end));
                }
                t = up_end + downtime.sample(rng);
            }
            schedules.push(NodeSchedule::from_sessions(sessions));
        }
        schedules
    }

    /// Convenience: generate and return only the availability of each node.
    #[must_use]
    pub fn availabilities(&self, rng: &mut Xoshiro256StarStar) -> Vec<f64> {
        self.generate(rng)
            .iter()
            .map(NodeSchedule::availability)
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn default_model() -> ChurnModel {
        ChurnModel::new(ChurnConfig::default())
    }

    #[test]
    fn session_end_at_matches_is_up() {
        let sched = NodeSchedule::from_sessions(vec![(10.0, 20.0), (30.0, 45.0)]);
        assert_eq!(sched.session_end_at(SimTime::new(5.0)), None);
        assert_eq!(sched.session_end_at(SimTime::new(10.0)), Some(20.0));
        assert_eq!(sched.session_end_at(SimTime::new(19.9)), Some(20.0));
        assert_eq!(sched.session_end_at(SimTime::new(20.0)), None);
        assert_eq!(sched.session_end_at(SimTime::new(31.0)), Some(45.0));
        for t in 0..50 {
            let t = SimTime::new(t as f64);
            assert_eq!(sched.session_end_at(t).is_some(), sched.is_up(t));
        }
    }

    #[test]
    fn generates_one_schedule_per_node() {
        let scheds = default_model().generate(&mut rng(1));
        assert_eq!(scheds.len(), 40);
    }

    #[test]
    fn schedules_are_sorted_disjoint_and_within_horizon() {
        let cfg = ChurnConfig::default();
        let scheds = ChurnModel::new(cfg).generate(&mut rng(2));
        for sched in &scheds {
            let mut prev_end = 0.0;
            for &(s, e) in sched.sessions() {
                assert!(s < e, "degenerate session");
                assert!(s >= prev_end, "overlapping sessions");
                assert!(e <= cfg.horizon + 1e-9, "session beyond horizon");
                prev_end = e;
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = default_model().generate(&mut rng(3));
        let b = default_model().generate(&mut rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn is_up_matches_sessions() {
        let sched = NodeSchedule::from_sessions(vec![(1.0, 3.0), (5.0, 8.0)]);
        assert!(!sched.is_up(SimTime::new(0.5)));
        assert!(sched.is_up(SimTime::new(1.0)));
        assert!(sched.is_up(SimTime::new(2.9)));
        assert!(!sched.is_up(SimTime::new(3.0)));
        assert!(!sched.is_up(SimTime::new(4.0)));
        assert!(sched.is_up(SimTime::new(5.0)));
        assert!(!sched.is_up(SimTime::new(8.0)));
    }

    #[test]
    fn availability_definition_matches_paper() {
        // Sessions of length 2 and 3 over a lifetime of 7 (from 1 to 8).
        let sched = NodeSchedule::from_sessions(vec![(1.0, 3.0), (5.0, 8.0)]);
        assert!((sched.availability() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn availability_of_single_session_is_one() {
        let sched = NodeSchedule::from_sessions(vec![(2.0, 9.0)]);
        assert_eq!(sched.availability(), 1.0);
    }

    #[test]
    fn availability_of_empty_schedule_is_zero() {
        assert_eq!(NodeSchedule::default().availability(), 0.0);
    }

    #[test]
    fn next_transition_walks_boundaries() {
        let sched = NodeSchedule::from_sessions(vec![(1.0, 3.0), (5.0, 8.0)]);
        assert_eq!(sched.next_transition_after(SimTime::new(0.0)), Some(1.0));
        assert_eq!(sched.next_transition_after(SimTime::new(1.0)), Some(3.0));
        assert_eq!(sched.next_transition_after(SimTime::new(3.0)), Some(5.0));
        assert_eq!(sched.next_transition_after(SimTime::new(6.0)), Some(8.0));
        assert_eq!(sched.next_transition_after(SimTime::new(8.0)), None);
    }

    #[test]
    fn median_session_time_near_configured() {
        // Collect raw session lengths over many nodes; the empirical median
        // should approximate the configured 60-minute median. Sessions are
        // truncated at the horizon, which biases the median down slightly,
        // so generate with a long horizon.
        let cfg = ChurnConfig {
            n_nodes: 2000,
            horizon: 10_000.0,
            ..ChurnConfig::default()
        };
        let scheds = ChurnModel::new(cfg).generate(&mut rng(4));
        let mut lengths: Vec<f64> = scheds
            .iter()
            .flat_map(|s| s.sessions().iter().map(|&(a, b)| b - a))
            .collect();
        lengths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = lengths[lengths.len() / 2];
        assert!(
            (median - 60.0).abs() / 60.0 < 0.1,
            "median session {median}"
        );
    }

    #[test]
    fn join_times_follow_configured_rate() {
        let cfg = ChurnConfig {
            n_nodes: 5000,
            join_rate: 2.0,
            horizon: 1e7,
            ..ChurnConfig::default()
        };
        let scheds = ChurnModel::new(cfg).generate(&mut rng(5));
        let last_join = scheds
            .iter()
            .filter_map(NodeSchedule::first_join)
            .fold(0.0f64, f64::max);
        // 5000 arrivals at rate 2/min ≈ 2500 minutes.
        assert!((last_join - 2500.0).abs() < 200.0, "last_join={last_join}");
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn from_sessions_rejects_overlap() {
        let _ = NodeSchedule::from_sessions(vec![(1.0, 4.0), (3.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn config_rejects_zero_nodes() {
        let _ = ChurnModel::new(ChurnConfig {
            n_nodes: 0,
            ..ChurnConfig::default()
        });
    }
}
