//! Inverse-CDF samplers for the distributions the paper's workload needs.
//!
//! We sample by inversion from a caller-supplied uniform generator rather
//! than pulling in `rand_distr`: the set of distributions is tiny
//! (exponential inter-arrivals for the Poisson join process, Pareto session
//! times) and inversion keeps the common-random-number discipline simple —
//! one uniform draw per variate, always.

use idpa_desim::rng::Xoshiro256StarStar;

/// Draws a uniform variate in the half-open interval `(0, 1]`.
///
/// The open lower end matters: both samplers below take `ln(u)` or a power
/// of `u`, which must never see zero.
fn uniform_open01(rng: &mut Xoshiro256StarStar) -> f64 {
    // 53 random mantissa bits, then shift from [0,1) to (0,1].
    let u = (rng.next() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
    1.0 - u
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Inter-arrival times of a Poisson process with rate `lambda` are
/// exponential; this is how the paper's "poisson process ... to simulate
/// the joining of nodes" is realised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (> 0).
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Creates the distribution from its mean (> 0).
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential::new(1.0 / mean)
    }

    /// The rate parameter.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        -uniform_open01(rng).ln() / self.lambda
    }
}

/// Pareto (type I) distribution with scale `x_m` and shape `alpha`.
///
/// The paper models peer session times as Pareto with a **median of
/// 60 minutes**; [`Pareto::from_median`] parameterises directly by that
/// median: for Pareto, `median = x_m · 2^{1/alpha}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with scale `x_m > 0` and shape
    /// `alpha > 0`.
    #[must_use]
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "Pareto scale must be positive, got {scale}");
        assert!(shape > 0.0, "Pareto shape must be positive, got {shape}");
        Pareto { scale, shape }
    }

    /// Creates a Pareto distribution with the given median and shape.
    #[must_use]
    pub fn from_median(median: f64, shape: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        let scale = median / 2f64.powf(1.0 / shape);
        Pareto::new(scale, shape)
    }

    /// Scale parameter `x_m` (the distribution's minimum).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter `alpha` (tail index).
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The distribution's median `x_m · 2^{1/alpha}`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.scale * 2f64.powf(1.0 / self.shape)
    }

    /// Mean, or `None` when `alpha <= 1` (infinite mean).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.shape > 1.0).then(|| self.shape * self.scale / (self.shape - 1.0))
    }

    /// CDF at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    /// Draws one variate via inversion: `x_m / u^{1/alpha}` for `u ∈ (0,1]`.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        self.scale / uniform_open01(rng).powf(1.0 / self.shape)
    }
}

/// Draws a Poisson-distributed count with the given mean, by counting
/// exponential inter-arrivals (Knuth's method; fine for the small means used
/// in the workload generator).
pub fn poisson_count(mean: f64, rng: &mut Xoshiro256StarStar) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "invalid Poisson mean {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product = 1.0;
    let mut count = 0u64;
    loop {
        product *= uniform_open01(rng);
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn uniform_open01_in_range() {
        let mut r = rng(1);
        for _ in 0..10_000 {
            let u = uniform_open01(&mut r);
            assert!(u > 0.0 && u <= 1.0, "u={u}");
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(5.0);
        let mut r = rng(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn exponential_from_mean_inverts_rate() {
        let d = Exponential::from_mean(4.0);
        assert!((d.lambda() - 0.25).abs() < 1e-12);
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(2.0);
        let mut r = rng(3);
        assert!((0..10_000).all(|_| d.sample(&mut r) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn pareto_median_parameterisation() {
        // The paper's setting: median session time 60 minutes.
        let d = Pareto::from_median(60.0, 1.5);
        assert!((d.median() - 60.0).abs() < 1e-9);
        // Empirical median over many draws should be close.
        let mut r = rng(4);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_median = samples[50_000];
        assert!(
            (emp_median - 60.0).abs() / 60.0 < 0.03,
            "empirical median {emp_median}"
        );
    }

    #[test]
    fn pareto_samples_at_least_scale() {
        let d = Pareto::new(10.0, 2.0);
        let mut r = rng(5);
        assert!((0..10_000).all(|_| d.sample(&mut r) >= 10.0));
    }

    #[test]
    fn pareto_mean_only_for_shape_above_one() {
        assert!(Pareto::new(1.0, 0.9).mean().is_none());
        let m = Pareto::new(1.0, 3.0).mean().unwrap();
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pareto_cdf_properties() {
        let d = Pareto::new(2.0, 1.5);
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.0);
        assert!((d.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
        assert!(d.cdf(4.0) > d.cdf(3.0));
    }

    #[test]
    fn pareto_is_heavy_tailed_relative_to_exponential() {
        // With the same median, Pareto(1.1) should put far more mass above
        // 10x the median than an exponential does.
        let median = 60.0;
        let p = Pareto::from_median(median, 1.1);
        let e = Exponential::new(std::f64::consts::LN_2 / median); // same median
        let mut r = rng(6);
        let n = 100_000;
        let p_tail = (0..n).filter(|_| p.sample(&mut r) > 600.0).count();
        let e_tail = (0..n).filter(|_| e.sample(&mut r) > 600.0).count();
        assert!(
            p_tail > 5 * e_tail.max(1),
            "p_tail={p_tail}, e_tail={e_tail}"
        );
    }

    #[test]
    fn poisson_count_mean_matches() {
        let mut r = rng(7);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| poisson_count(3.0, &mut r)).sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_count_zero_mean() {
        let mut r = rng(8);
        assert_eq!(poisson_count(0.0, &mut r), 0);
    }
}
