//! The cost model of §2.4.1.
//!
//! * **Participation cost** `C^p`: a one-time cost per peer session ("the
//!   cost of running a software associated with a particular application
//!   for a peer session").
//! * **Transmission cost** `C^t = b·l`: payload size `b` times per-unit
//!   transmission cost `l` to the next hop. §3 adds: "We model the
//!   transmission cost between two peers as being proportional to the
//!   communication bandwidth between them" — we realise this as
//!   `l(i,j) = cost_scale / bandwidth(i,j)`, i.e. cheap links are the
//!   high-bandwidth ones, which is the reading under which a selfish peer
//!   "forwards traffic on low bandwidth links" to conserve its own access
//!   bandwidth (the Shrivastava–Banerjee behaviour the paper cites).

use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use rand::RngExt;

/// Parameters of the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Number of peers.
    pub n_nodes: usize,
    /// One-time participation cost `C^p` per peer session.
    pub participation_cost: f64,
    /// Payload size `b` (arbitrary units; the paper leaves it abstract).
    pub payload_size: f64,
    /// Lower bound of the uniform link-bandwidth distribution.
    pub bandwidth_lo: f64,
    /// Upper bound of the uniform link-bandwidth distribution.
    pub bandwidth_hi: f64,
    /// Numerator of the per-unit cost: `l(i,j) = cost_scale / bw(i,j)`.
    pub cost_scale: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            n_nodes: 40,
            participation_cost: 5.0,
            payload_size: 1.0,
            bandwidth_lo: 1.0,
            bandwidth_hi: 10.0,
            cost_scale: 10.0,
        }
    }
}

impl CostConfig {
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.n_nodes > 0, "need at least one node");
        assert!(self.participation_cost >= 0.0, "negative C^p");
        assert!(self.payload_size > 0.0, "payload size must be positive");
        assert!(
            0.0 < self.bandwidth_lo && self.bandwidth_lo <= self.bandwidth_hi,
            "invalid bandwidth range [{}, {}]",
            self.bandwidth_lo,
            self.bandwidth_hi
        );
        assert!(self.cost_scale > 0.0, "cost_scale must be positive");
    }
}

/// How the symmetric bandwidth matrix is held.
#[derive(Debug, Clone)]
enum Bandwidth {
    /// Upper-triangular storage of the full matrix: entry (i, j) for
    /// i < j is at `i*n - i*(i+1)/2 + (j - i - 1)`. O(n²) memory, drawn
    /// from one sequential stream — the historical layout every existing
    /// scenario pins.
    Dense(Vec<f64>),
    /// No storage at all: each edge's bandwidth is the first draw of a
    /// position-keyed stream (`"bandwidth/edge"` keyed by the ordered
    /// pair), materialized on every lookup. O(1) memory; the *values*
    /// differ from the dense layout (a different, but equally i.i.d.,
    /// uniform draw per edge), so this is a scenario-level choice, not a
    /// transparent execution mode.
    Sparse(StreamFactory),
}

/// A symmetric peer-to-peer bandwidth matrix and the derived costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: CostConfig,
    bandwidth: Bandwidth,
}

impl CostModel {
    /// Samples a symmetric bandwidth matrix with i.i.d. uniform entries.
    #[must_use]
    pub fn generate(config: CostConfig, rng: &mut Xoshiro256StarStar) -> Self {
        config.validate();
        let n = config.n_nodes;
        let mut bandwidth = Vec::with_capacity(n * (n - 1) / 2);
        for _ in 0..n * (n - 1) / 2 {
            bandwidth.push(rng.random_range(config.bandwidth_lo..=config.bandwidth_hi));
        }
        CostModel {
            config,
            bandwidth: Bandwidth::Dense(bandwidth),
        }
    }

    /// A sparse model that stores no matrix: each symmetric edge's
    /// bandwidth is re-derived on demand from its own position-keyed
    /// stream. Memory is O(1) regardless of `n_nodes`, which is what lets
    /// million-node worlds exist at all; the sampled values are *not*
    /// those of [`CostModel::generate`] (different stream layout), so
    /// scenarios opt in explicitly.
    #[must_use]
    pub fn generate_sparse(config: CostConfig, streams: StreamFactory) -> Self {
        config.validate();
        CostModel {
            config,
            bandwidth: Bandwidth::Sparse(streams),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CostConfig {
        &self.config
    }

    fn tri_index(&self, i: usize, j: usize) -> usize {
        let n = self.config.n_nodes;
        debug_assert!(i < j && j < n);
        i * n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Bandwidth between peers `i` and `j` (symmetric; `i != j`).
    #[must_use]
    pub fn bandwidth(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "no self-link bandwidth");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        match &self.bandwidth {
            Bandwidth::Dense(tri) => tri[self.tri_index(a, b)],
            Bandwidth::Sparse(streams) => {
                let mut rng = streams.stream_indexed2("bandwidth/edge", a as u64, b as u64);
                rng.random_range(self.config.bandwidth_lo..=self.config.bandwidth_hi)
            }
        }
    }

    /// Per-unit transmission cost `l(i,j) = cost_scale / bandwidth(i,j)`.
    #[must_use]
    pub fn unit_cost(&self, i: usize, j: usize) -> f64 {
        self.config.cost_scale / self.bandwidth(i, j)
    }

    /// Transmission cost `C^t(i,j) = b · l(i,j)` for one forwarding instance.
    #[must_use]
    pub fn transmission_cost(&self, i: usize, j: usize) -> f64 {
        self.config.payload_size * self.unit_cost(i, j)
    }

    /// Participation cost `C^p` (constant across peers in the base model).
    #[must_use]
    pub fn participation_cost(&self) -> f64 {
        self.config.participation_cost
    }

    /// Largest possible transmission cost under this configuration — a
    /// useful bound when choosing `P_f` to satisfy Prop. 3.
    #[must_use]
    pub fn max_transmission_cost(&self) -> f64 {
        self.config.payload_size * self.config.cost_scale / self.config.bandwidth_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> CostModel {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        CostModel::generate(CostConfig::default(), &mut rng)
    }

    #[test]
    fn bandwidth_is_symmetric() {
        let m = model(1);
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert_eq!(m.bandwidth(i, j), m.bandwidth(j, i));
                }
            }
        }
    }

    #[test]
    fn bandwidth_in_configured_range() {
        let m = model(2);
        let n = m.config().n_nodes;
        for i in 0..n {
            for j in (i + 1)..n {
                let bw = m.bandwidth(i, j);
                assert!((1.0..=10.0).contains(&bw), "bw={bw}");
            }
        }
    }

    #[test]
    fn cost_inversely_proportional_to_bandwidth() {
        let m = model(3);
        // Find two pairs with different bandwidths; the one with more
        // bandwidth must cost less.
        let (hi_bw, lo_bw) = if m.bandwidth(0, 1) > m.bandwidth(2, 3) {
            ((0, 1), (2, 3))
        } else {
            ((2, 3), (0, 1))
        };
        assert!(m.transmission_cost(hi_bw.0, hi_bw.1) <= m.transmission_cost(lo_bw.0, lo_bw.1));
    }

    #[test]
    fn transmission_cost_scales_with_payload() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let cfg = CostConfig {
            payload_size: 2.0,
            ..CostConfig::default()
        };
        let m2 = CostModel::generate(cfg, &mut rng);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let m1 = CostModel::generate(CostConfig::default(), &mut rng);
        // Same seed => same bandwidth matrix => exactly double cost.
        assert!((m2.transmission_cost(0, 1) - 2.0 * m1.transmission_cost(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn max_transmission_cost_bounds_all_links() {
        let m = model(5);
        let n = m.config().n_nodes;
        let bound = m.max_transmission_cost();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(m.transmission_cost(i, j) <= bound + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no self-link")]
    fn self_link_is_rejected() {
        let _ = model(6).bandwidth(3, 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = model(7);
        let b = model(7);
        assert_eq!(a.bandwidth(0, 5), b.bandwidth(0, 5));
    }

    fn sparse(seed: u64, n: usize) -> CostModel {
        let cfg = CostConfig {
            n_nodes: n,
            ..CostConfig::default()
        };
        CostModel::generate_sparse(cfg, StreamFactory::new(seed))
    }

    #[test]
    fn sparse_is_symmetric_in_range_and_deterministic() {
        let a = sparse(9, 1_000_000);
        let b = sparse(9, 1_000_000);
        for (i, j) in [(0usize, 1usize), (3, 999_999), (500_000, 7)] {
            let bw = a.bandwidth(i, j);
            assert_eq!(bw, a.bandwidth(j, i), "symmetry at ({i}, {j})");
            assert_eq!(bw, b.bandwidth(i, j), "determinism at ({i}, {j})");
            assert!((1.0..=10.0).contains(&bw), "bw={bw}");
        }
        assert!(a.max_transmission_cost() >= a.transmission_cost(0, 1));
    }

    #[test]
    fn sparse_reads_are_position_stable() {
        let m = sparse(11, 100);
        let first = m.bandwidth(4, 17);
        let _interleaved = (m.bandwidth(0, 1), m.bandwidth(98, 99));
        assert_eq!(
            m.bandwidth(4, 17),
            first,
            "lookups must not disturb each other"
        );
    }
}
