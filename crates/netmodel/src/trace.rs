//! Churn-trace serialisation.
//!
//! The synthetic churn model (Poisson joins, Pareto sessions) matches the
//! paper's setup, but a reproduction should also run against *measured*
//! traces (e.g. the Saroiu et al. measurements the paper's session model
//! is calibrated to). This module round-trips per-node session schedules
//! through a minimal CSV dialect:
//!
//! ```csv
//! node,start,end
//! 0,12.5,75.0
//! 0,90.0,140.0
//! 1,0.0,60.0
//! ```
//!
//! Rows may appear in any order; sessions are grouped by node id and must
//! be disjoint per node after sorting.

use std::fmt::Write as _;

use crate::churn::NodeSchedule;

/// Errors while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A malformed line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Sessions of one node overlap or are inverted.
    BadSchedule {
        /// The offending node id.
        node: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadLine { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::BadSchedule { node } => {
                write!(f, "node {node}: overlapping or inverted sessions")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Serialises schedules to the CSV dialect (header included).
#[must_use]
pub fn to_csv(schedules: &[NodeSchedule]) -> String {
    let mut out = String::from("node,start,end\n");
    for (node, sched) in schedules.iter().enumerate() {
        for &(start, end) in sched.sessions() {
            let _ = writeln!(out, "{node},{start},{end}");
        }
    }
    out
}

/// Parses the CSV dialect back into schedules.
///
/// `n_nodes` fixes the output length (nodes with no rows get empty
/// schedules — a node that never came up). Node ids must be `< n_nodes`.
pub fn from_csv(csv: &str, n_nodes: usize) -> Result<Vec<NodeSchedule>, TraceError> {
    let mut sessions: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_nodes];
    for (idx, raw) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || (idx == 0 && line.eq_ignore_ascii_case("node,start,end")) {
            continue;
        }
        let mut parts = line.split(',');
        let (Some(node), Some(start), Some(end), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(TraceError::BadLine {
                line: line_no,
                reason: "expected exactly 3 comma-separated fields".into(),
            });
        };
        let node: usize = node.trim().parse().map_err(|_| TraceError::BadLine {
            line: line_no,
            reason: format!("bad node id '{node}'"),
        })?;
        if node >= n_nodes {
            return Err(TraceError::BadLine {
                line: line_no,
                reason: format!("node id {node} out of range (n_nodes = {n_nodes})"),
            });
        }
        let parse_time = |s: &str| -> Result<f64, TraceError> {
            let v: f64 = s.trim().parse().map_err(|_| TraceError::BadLine {
                line: line_no,
                reason: format!("bad time '{s}'"),
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(TraceError::BadLine {
                    line: line_no,
                    reason: format!("time {v} must be finite and non-negative"),
                });
            }
            Ok(v)
        };
        let start = parse_time(start)?;
        let end = parse_time(end)?;
        if end <= start {
            return Err(TraceError::BadLine {
                line: line_no,
                reason: format!("empty or inverted session ({start}, {end})"),
            });
        }
        sessions[node].push((start, end));
    }

    let mut out = Vec::with_capacity(n_nodes);
    for (node, mut s) in sessions.into_iter().enumerate() {
        s.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        if s.windows(2).any(|w| w[0].1 > w[1].0) {
            return Err(TraceError::BadSchedule { node });
        }
        out.push(NodeSchedule::from_sessions(s));
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::churn::{ChurnConfig, ChurnModel};
    use idpa_desim::rng::Xoshiro256StarStar;

    #[test]
    fn round_trip_synthetic_trace() {
        let cfg = ChurnConfig {
            n_nodes: 12,
            ..ChurnConfig::default()
        };
        let scheds = ChurnModel::new(cfg).generate(&mut Xoshiro256StarStar::seed_from_u64(1));
        let csv = to_csv(&scheds);
        let back = from_csv(&csv, 12).unwrap();
        assert_eq!(back, scheds);
    }

    #[test]
    fn parses_unordered_rows() {
        let csv = "node,start,end\n1,5.0,6.0\n0,1.0,2.0\n1,0.5,1.5\n";
        let scheds = from_csv(csv, 2).unwrap();
        assert_eq!(scheds[0].sessions(), &[(1.0, 2.0)]);
        assert_eq!(scheds[1].sessions(), &[(0.5, 1.5), (5.0, 6.0)]);
    }

    #[test]
    fn missing_nodes_get_empty_schedules() {
        let csv = "node,start,end\n2,1.0,2.0\n";
        let scheds = from_csv(csv, 4).unwrap();
        assert!(scheds[0].sessions().is_empty());
        assert!(scheds[3].sessions().is_empty());
        assert_eq!(scheds[2].sessions().len(), 1);
    }

    #[test]
    fn header_is_optional_but_tolerated() {
        let with = from_csv("node,start,end\n0,1.0,2.0\n", 1).unwrap();
        let without = from_csv("0,1.0,2.0\n", 1).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn rejects_bad_arity() {
        let err = from_csv("0,1.0\n", 1).unwrap_err();
        assert!(matches!(err, TraceError::BadLine { line: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_node() {
        let err = from_csv("5,1.0,2.0\n", 2).unwrap_err();
        assert!(matches!(err, TraceError::BadLine { .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_inverted_session() {
        let err = from_csv("0,5.0,2.0\n", 1).unwrap_err();
        assert!(err.to_string().contains("inverted"));
    }

    #[test]
    fn rejects_overlapping_sessions() {
        let err = from_csv("0,1.0,5.0\n0,4.0,6.0\n", 1).unwrap_err();
        assert_eq!(err, TraceError::BadSchedule { node: 0 });
    }

    #[test]
    fn rejects_negative_time() {
        let err = from_csv("0,-1.0,2.0\n", 1).unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }

    #[test]
    fn empty_input_gives_empty_schedules() {
        let scheds = from_csv("", 3).unwrap();
        assert_eq!(scheds.len(), 3);
        assert!(scheds.iter().all(|s| s.sessions().is_empty()));
    }
}
