//! # idpa-netmodel — stochastic network substrate
//!
//! The paper's simulation (§3) drives the overlay with:
//!
//! * a **Poisson process** for node joins,
//! * **Pareto-distributed session times** with a median of 60 minutes
//!   (following Saroiu et al.'s measurement study of P2P file-sharing
//!   systems, the paper's reference \[23\]),
//! * a **transmission cost** between two peers "proportional to the
//!   communication bandwidth between them" (`C^t = b·l` for payload size
//!   `b` and per-unit cost `l`, §2.4.1), and
//! * a constant one-time **participation cost** `C^p` per peer session.
//!
//! This crate provides exactly those pieces: inverse-CDF samplers for the
//! needed distributions ([`dist`]), per-node churn schedules ([`churn`]),
//! and the bandwidth/cost matrix ([`cost`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod churn;
pub mod cost;
pub mod dist;
pub mod trace;

pub use churn::{ChurnConfig, ChurnModel, NodeSchedule};
pub use cost::{CostConfig, CostModel};
pub use dist::{Exponential, Pareto};
pub use trace::{from_csv as trace_from_csv, to_csv as trace_to_csv};
