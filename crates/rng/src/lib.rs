//! In-tree replacement for the thin slice of the `rand` crate API used by
//! this workspace.
//!
//! The repository implements its own generators (SplitMix64 and
//! xoshiro256** in `idpa-desim`) so that bit streams cannot change under
//! us; all it ever needed from the external `rand` crate were the trait
//! surfaces — [`TryRng`] (the fallible core trait the generators
//! implement), [`Rng`] (the infallible view) and [`RngExt`]
//! (`random_range`). Vendoring this surface in-tree makes the workspace
//! build with **no network and no registry index**: `cargo build
//! --offline` needs nothing beyond the toolchain.
//!
//! The workspace maps the `rand` dependency name onto this crate
//! (`rand = { path = "crates/rng", package = "idpa-rng" }`), so call sites
//! keep their idiomatic `use rand::RngExt;` form.
//!
//! ```
//! use idpa_rng::{Rng, RngExt, TryRng};
//!
//! struct Counter(u64);
//! impl TryRng for Counter {
//!     type Error = core::convert::Infallible;
//!     fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
//!         Ok((self.try_next_u64()? >> 32) as u32)
//!     }
//!     fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
//!         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
//!         Ok(self.0)
//!     }
//!     fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
//!         idpa_rng::fill_bytes_via_next(self, dst);
//!         Ok(())
//!     }
//! }
//!
//! let mut rng = Counter(1);
//! let x: f64 = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.random_range(0..10usize);
//! assert!(i < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use core::convert::Infallible;
use core::ops::{Range, RangeInclusive};

/// The fallible core trait a random-number generator implements.
///
/// Mirrors `rand::TryRng`: generators that cannot fail use
/// `Error = Infallible` and get the infallible [`Rng`] view for free.
pub trait TryRng {
    /// The error type, `Infallible` for deterministic software generators.
    type Error;

    /// The next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// The next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// Infallible view over a [`TryRng`] whose error is uninhabited.
///
/// Blanket-implemented; never implement this directly.
pub trait Rng {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<G: TryRng<Error = Infallible> + ?Sized> Rng for G {
    fn next_u32(&mut self) -> u32 {
        let Ok(v) = self.try_next_u32();
        v
    }

    fn next_u64(&mut self) -> u64 {
        let Ok(v) = self.try_next_u64();
        v
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let Ok(()) = self.try_fill_bytes(dst);
    }
}

/// Helper for `try_fill_bytes` implementations: fills `dst` from repeated
/// `try_next_u64` draws (little-endian), consuming one extra draw for a
/// trailing partial chunk.
pub fn fill_bytes_via_next<G: TryRng<Error = Infallible> + ?Sized>(rng: &mut G, dst: &mut [u8]) {
    let mut chunks = dst.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Convenience extension methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw from `range` (half-open `a..b` or inclusive
    /// `a..=b`), for the integer and float types the workspace samples.
    ///
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<G: Rng + ?Sized> RngExt for G {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_in<G: Rng>(self, rng: &mut G) -> T;
}

/// Uniform `u64` in `[0, span)` by masked rejection — unbiased and cheap
/// (the mask keeps the acceptance probability above 1/2).
fn uniform_below<G: Rng>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let mask = u64::MAX >> (span - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < span {
            return v;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<G: Rng>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        loop {
            let x = self.start + (self.end - self.start) * unit_f64(rng);
            // Rounding at the top of a wide range can land exactly on
            // `end`; redraw (vanishingly rare) to keep the bound open.
            if x < self.end {
                return x;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<G: Rng>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, locally: the test generator.
    struct Sm(u64);

    impl TryRng for Sm {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.next_u64_impl() >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.next_u64_impl())
        }
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            fill_bytes_via_next(self, dst);
            Ok(())
        }
    }

    impl Sm {
        fn next_u64_impl(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = Sm(1);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(0u32..=6);
            assert!(b <= 6);
            let c = rng.random_range(5u64..6);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = Sm(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Sm(3);
        for _ in 0..10_000 {
            let x = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = Sm(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn integer_distribution_is_roughly_uniform() {
        let mut rng = Sm(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.random_range(0usize..7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn fill_bytes_matches_next_u64_le() {
        let mut a = Sm(6);
        let mut b = Sm(6);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &b.next_u64().to_le_bytes());
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = Sm(7);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Sm(8);
        let _ = rng.random_range(5usize..5);
    }
}
