//! Shape tests: the qualitative claims of the paper's evaluation (§3),
//! asserted at test scale with common random numbers.
//!
//! These are the guardrails for the reproduction: if a refactor flips who
//! wins in Fig. 5 or the direction of Fig. 3, these tests fail.

use idpa::prelude::*;

fn run(f: f64, strategy: RoutingStrategy, seed: u64) -> RunResult {
    SimulationRun::execute(ScenarioConfig {
        adversary_fraction: f,
        good_strategy: strategy,
        ..ScenarioConfig::quick_test(seed)
    })
}

fn mean_over_seeds(f: f64, strategy: RoutingStrategy, metric: impl Fn(&RunResult) -> f64) -> f64 {
    let seeds = [1u64, 2, 3];
    seeds
        .iter()
        .map(|&s| metric(&run(f, strategy, s)))
        .sum::<f64>()
        / seeds.len() as f64
}

const MODEL1: RoutingStrategy = RoutingStrategy::Utility(UtilityModel::ModelI);
const MODEL2: RoutingStrategy = RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 });

/// Fig. 3/4 shape: good-node payoff decreases as the malicious fraction
/// grows, for both utility models.
#[test]
fn payoff_declines_with_adversary_fraction() {
    for strategy in [MODEL1, MODEL2] {
        let low = mean_over_seeds(0.1, strategy, |r| r.avg_good_payoff);
        let high = mean_over_seeds(0.7, strategy, |r| r.avg_good_payoff);
        assert!(
            high < low,
            "{strategy:?}: payoff must decline, got {low} -> {high}"
        );
    }
}

/// Fig. 3 shape: "at low values of f, the average payoff is appreciably
/// high" — concretely, well above zero despite costs.
#[test]
fn payoff_appreciably_high_at_low_f() {
    let payoff = mean_over_seeds(0.1, MODEL1, |r| r.avg_good_payoff);
    assert!(payoff > 100.0, "payoff {payoff}");
}

/// Fig. 5 shape: both utility models beat random routing on forwarder-set
/// size at every adversary level tested.
#[test]
fn utility_models_beat_random_on_forwarder_set() {
    for f in [0.1, 0.5] {
        let random = mean_over_seeds(f, RoutingStrategy::Random, |r| r.avg_forwarder_set);
        for strategy in [MODEL1, MODEL2] {
            let set = mean_over_seeds(f, strategy, |r| r.avg_forwarder_set);
            assert!(set < random * 0.9, "f={f} {strategy:?}: {set} !< {random}");
        }
    }
}

/// Fig. 5 shape: the forwarder set grows with f under utility routing
/// (malicious random routers scatter paths).
#[test]
fn forwarder_set_grows_with_adversaries() {
    let low = mean_over_seeds(0.1, MODEL1, |r| r.avg_forwarder_set);
    let high = mean_over_seeds(0.7, MODEL1, |r| r.avg_forwarder_set);
    assert!(high > low, "{low} -> {high}");
}

/// Figs. 6–7 shape: utility model I produces a higher maximum payoff and a
/// larger payoff variance than random routing; random routing has the
/// smallest variance.
#[test]
fn model_one_concentrates_payoffs() {
    let seed = 2;
    let m1 = run(0.1, MODEL1, seed);
    let rnd = run(0.1, RoutingStrategy::Random, seed);

    let stats = |v: &[f64]| {
        let mut s = OnlineStats::new();
        for &x in v {
            s.push(x);
        }
        s
    };
    let s1 = stats(&m1.good_payoffs);
    let sr = stats(&rnd.good_payoffs);
    assert!(s1.max() > sr.max(), "max: {} !> {}", s1.max(), sr.max());
    assert!(
        s1.std_dev() > sr.std_dev(),
        "std: {} !> {}",
        s1.std_dev(),
        sr.std_dev()
    );
}

/// Table 2 shape: routing efficiency decreases as f grows.
#[test]
fn routing_efficiency_decreases_with_f() {
    let low = mean_over_seeds(0.1, MODEL1, |r| r.routing_efficiency);
    let high = mean_over_seeds(0.9, MODEL1, |r| r.routing_efficiency);
    assert!(high < low, "{low} -> {high}");
}

/// Table 2 shape: higher τ tends to increase routing efficiency (compare
/// the extremes of the paper's τ set, averaged over seeds).
#[test]
fn higher_tau_raises_routing_efficiency() {
    let eff = |tau: f64| {
        let seeds = [1u64, 2, 3, 4];
        seeds
            .iter()
            .map(|&s| {
                SimulationRun::execute(ScenarioConfig {
                    adversary_fraction: 0.1,
                    tau,
                    good_strategy: MODEL1,
                    ..ScenarioConfig::quick_test(s)
                })
                .routing_efficiency
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let low_tau = eff(0.5);
    let high_tau = eff(4.0);
    assert!(high_tau > low_tau, "tau=0.5: {low_tau}, tau=4: {high_tau}");
}

/// Prop. 1 shape: utility routing has a lower new-edge fraction (fewer
/// path reformations) than random routing.
#[test]
fn utility_routing_reduces_path_reformations() {
    let random = mean_over_seeds(0.0, RoutingStrategy::Random, |r| r.new_edge_fraction);
    for strategy in [MODEL1, MODEL2] {
        let frac = mean_over_seeds(0.0, strategy, |r| r.new_edge_fraction);
        assert!(frac < random, "{strategy:?}: {frac} !< {random}");
    }
}

/// §5 availability attack shape: pinning adversaries always-on increases
/// their payoff share (they capture more forwarding).
#[test]
fn availability_attack_pays_the_attacker() {
    let avg = |attack: bool| {
        let seeds = [1u64, 2, 3];
        seeds
            .iter()
            .map(|&s| {
                let r = SimulationRun::execute(ScenarioConfig {
                    adversary_fraction: 0.3,
                    availability_attack: attack,
                    good_strategy: MODEL1,
                    ..ScenarioConfig::quick_test(s)
                });
                if r.malicious_payoffs.is_empty() {
                    0.0
                } else {
                    r.malicious_payoffs.iter().sum::<f64>() / r.malicious_payoffs.len() as f64
                }
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let off = avg(false);
    let on = avg(true);
    assert!(on > off, "attack must pay: off={off}, on={on}");
}

/// Intersection attack: utility routing leaves at least as much anonymity
/// as random routing (fewer observations through malicious nodes at equal
/// f because paths are stable and short-setted).
#[test]
fn utility_routing_preserves_anonymity_against_intersection() {
    let rnd = mean_over_seeds(0.3, RoutingStrategy::Random, |r| r.avg_anonymity_degree);
    let m1 = mean_over_seeds(0.3, MODEL1, |r| r.avg_anonymity_degree);
    assert!(m1 >= rnd - 0.05, "model I anonymity {m1} vs random {rnd}");
}
