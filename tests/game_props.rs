//! Integration of the game-theoretic analysis (§2.4) with the simulated
//! mechanism: the stage-game propositions hold under the same parameters
//! the simulator runs with.

use idpa::game::extensive::GameTree;
use idpa::game::forwarding::{
    dominance_threshold, expected_session_payoff, participation_threshold, ForwardingStageGame,
    StageAction,
};
use idpa::prelude::*;

/// Prop. 3 under the simulator's default parameters: with P_f ∈ [50, 100]
/// and C^p + C^t at most 5 + 10, forwarding is a dominant strategy.
#[test]
fn default_scenario_satisfies_dominance_condition() {
    let cfg = ScenarioConfig::default();
    let world = World::generate(&cfg);
    // The worst-case transmission cost over the sampled bandwidth matrix.
    let max_ct = world.costs.max_transmission_cost();
    let cp = world.costs.participation_cost();
    let threshold = dominance_threshold(cp, max_ct);
    assert!(
        cfg.pf_range.0 > threshold,
        "P_f lower bound {} must exceed the dominance threshold {threshold}",
        cfg.pf_range.0
    );

    // And the normal-form check agrees for a representative game.
    let game = ForwardingStageGame {
        pf: cfg.pf_range.0,
        pr: 0.0,
        cp,
        ct: max_ct,
        q_random: 0.0,
        q_nonrandom: 0.0,
    };
    assert!(game.forwarding_is_dominant(3));
}

/// Prop. 2 under the paper's workload: N = 40, L ≈ 4 (Crowds p = 0.75),
/// k = 20 rounds per pair — the participation threshold is far below the
/// configured P_f.
#[test]
fn default_scenario_satisfies_participation_condition() {
    let cfg = ScenarioConfig::default();
    let l = cfg.policy.expected_hops();
    let k = cfg.total_transmissions / cfg.n_pairs;
    let threshold = participation_threshold(
        cfg.cost.participation_cost,
        10.0, // worst-case C^t under the default cost config
        cfg.n_nodes,
        l,
        k,
    );
    assert!(cfg.pf_range.0 > threshold);
    assert!(
        expected_session_payoff(
            cfg.pf_range.0,
            cfg.cost.participation_cost,
            10.0,
            cfg.n_nodes,
            l,
            k
        ) > 0.0
    );
}

/// The rational stage action under simulator parameters is non-random
/// forwarding whenever quality-routing yields any quality edge.
#[test]
fn rational_action_is_nonrandom_forwarding() {
    let game = ForwardingStageGame {
        pf: 50.0,
        pr: 50.0,
        cp: 5.0,
        ct: 10.0,
        q_random: 0.2,
        q_nonrandom: 0.6,
    };
    assert_eq!(game.rational_action(), StageAction::ForwardNonRandom);
    // And it is a pure Nash equilibrium of the 3-player encoding.
    let normal = game.to_normal_form(3);
    let all_nonrandom = vec![StageAction::ForwardNonRandom.index(); 3];
    assert!(normal.pure_nash_equilibria().contains(&all_nonrandom));
}

/// Model II's L-stage path game (§2.4.3): backward induction on an
/// explicit 3-stage tree picks the path that maximises each mover's own
/// continuation, which here coincides with the high-quality path.
#[test]
fn path_formation_game_spne_prefers_quality() {
    // Stage payoffs express U = P_f + q·P_r − C for the moving forwarder:
    // stage players 0 (initiator-side forwarder) then 1 (second forwarder).
    let pf = 50.0;
    let pr = 100.0;
    let c = 7.0;
    let u = |q: f64| pf + q * pr - c;

    let mut tree = GameTree::new(2);
    // Player 1 (second forwarder) chooses between delivering over a good
    // edge (q = 1, the responder edge) or a mediocre peer edge (q = 0.3).
    let deliver = tree.terminal(vec![u(0.9), u(1.0)]);
    let relay = tree.terminal(vec![u(0.9), u(0.3)]);
    let second = tree.decision(1, vec![("deliver", deliver), ("relay", relay)]);
    // Player 0 chooses between the path through player 1 (edge quality
    // 0.9) and a direct low-quality hand-off (q = 0.2).
    let low = tree.terminal(vec![u(0.2), 0.0]);
    let root = tree.decision(0, vec![("via-1", second), ("low", low)]);
    tree.set_root(root);

    let sol = tree.solve();
    let path: Vec<String> = sol
        .equilibrium_path(&tree)
        .into_iter()
        .map(|(_, label)| label)
        .collect();
    assert_eq!(path, vec!["via-1", "deliver"]);
    // The SPNE value for player 0 reflects the high-quality edge.
    assert!((sol.root_value(&tree)[0] - u(0.9)).abs() < 1e-12);
}

/// Sweeping P_f across the Prop. 3 boundary flips dominance exactly there.
#[test]
fn dominance_flips_at_threshold() {
    let (cp, ct) = (5.0, 2.0);
    let mk = |pf: f64| ForwardingStageGame {
        pf,
        pr: 0.0,
        cp,
        ct,
        q_random: 0.0,
        q_nonrandom: 0.0,
    };
    let thr = dominance_threshold(cp, ct);
    assert!(!mk(thr - 0.5).forwarding_is_dominant(2));
    assert!(mk(thr + 0.5).forwarding_is_dominant(2));
}
