//! Failure injection and boundary scenarios: the simulator must produce
//! sane (not merely non-crashing) results when the world degenerates.

use idpa::core::routing::AdversaryStrategy;
use idpa::netmodel::ChurnConfig;
use idpa::prelude::*;

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig::quick_test(seed)
}

#[test]
fn all_nodes_malicious_still_completes() {
    let r = SimulationRun::execute(ScenarioConfig {
        adversary_fraction: 1.0,
        ..base(1)
    });
    assert_eq!(r.connections, 200);
    assert!(r.good_payoffs.is_empty(), "no good nodes to pay");
    assert_eq!(r.avg_good_payoff, 0.0);
    assert!(!r.malicious_payoffs.is_empty());
}

#[test]
fn minimal_network_of_four_nodes() {
    let cfg = ScenarioConfig {
        degree: 2,
        n_pairs: 2,
        total_transmissions: 20,
        max_connections: 20,
        ..base(2).with_nodes(4)
    };
    let r = SimulationRun::execute(cfg);
    assert_eq!(r.connections, 20);
    assert!(r.avg_forwarder_set <= 4.0);
}

#[test]
fn extreme_churn_forces_direct_delivery_sometimes() {
    // Sessions of ~1 minute median with hour-long downtimes: neighbors are
    // almost never up, so most connections degrade toward direct I -> R.
    let mut cfg = base(3);
    cfg.churn = ChurnConfig {
        n_nodes: cfg.n_nodes,
        join_rate: 2.0,
        session_median: 1.0,
        session_shape: 1.5,
        downtime_mean: 60.0,
        horizon: cfg.churn.horizon,
    };
    let r = SimulationRun::execute(cfg);
    assert_eq!(r.connections, 200, "every transmission still completes");
    assert!(
        r.avg_path_length < 1.5,
        "paths collapse under extreme churn: L={}",
        r.avg_path_length
    );
}

#[test]
fn zero_routing_benefit_still_runs() {
    let r = SimulationRun::execute(ScenarioConfig {
        tau: 0.0,
        ..base(4)
    });
    assert_eq!(r.connections, 200);
    // With tau = 0 payoffs are pure forwarding benefit minus costs.
    assert!(r.avg_good_payoff > 0.0);
}

#[test]
fn costs_exceeding_benefits_suppress_forwarding() {
    // P_f below every node's participation + transmission cost: rational
    // nodes decline, so utility-routed paths are all direct.
    let mut cfg = base(5);
    cfg.pf_range = (0.1, 0.2);
    cfg.cost.participation_cost = 50.0;
    let r = SimulationRun::execute(cfg);
    assert_eq!(r.connections, 200);
    assert_eq!(
        r.avg_path_length, 0.0,
        "no rational node forwards at a loss"
    );
    assert_eq!(r.avg_forwarder_set, 0.0);
}

#[test]
fn single_connection_per_pair_has_no_history_effects() {
    let cfg = ScenarioConfig {
        n_pairs: 200,
        total_transmissions: 200,
        max_connections: 1,
        ..base(6)
    };
    let r = SimulationRun::execute(cfg);
    assert_eq!(r.connections, 200);
    // One connection per bundle: no reformations are even possible.
    assert_eq!(r.reformation_rate, 0.0);
}

#[test]
fn colluding_adversaries_with_no_colluder_neighbors_fall_back() {
    // f small enough that most malicious nodes have no malicious neighbor:
    // collusion must degrade gracefully to random (and complete the run).
    let r = SimulationRun::execute(ScenarioConfig {
        adversary_fraction: 0.05,
        adversary_strategy: AdversaryStrategy::Colluding,
        ..base(7)
    });
    assert_eq!(r.connections, 200);
}

#[test]
fn horizon_before_any_transmission_yields_empty_run() {
    let cfg = ScenarioConfig { ..base(8) };
    let world = World::generate(&cfg);
    let mut run = SimulationRun::new(cfg, world);
    let mut engine = Engine::new();
    run.schedule_all(&mut engine);
    // Stop before the warmup ends: no transmissions fire.
    engine.run(&mut run, Some(SimTime::new(cfg.warmup * 0.5)));
    let r = run.finish();
    assert_eq!(r.connections, 0);
    assert_eq!(r.avg_forwarder_set, 0.0);
    assert_eq!(r.avg_good_payoff, 0.0);
    assert_eq!(r.attack_exposure_rate, 0.0);
}

#[test]
fn degenerate_weights_still_work() {
    for weights in [(0.0, 1.0), (1.0, 0.0)] {
        let r = SimulationRun::execute(ScenarioConfig { weights, ..base(9) });
        assert_eq!(r.connections, 200, "weights {weights:?}");
    }
}

#[test]
fn probing_disabled_by_huge_period_degrades_not_crashes() {
    // Probe period beyond the horizon: availability estimates stay zero,
    // quality reduces to selectivity only.
    let mut cfg = base(10);
    cfg.probe_period = cfg.churn.horizon * 2.0;
    let r = SimulationRun::execute(cfg);
    assert_eq!(r.connections, 200);
    assert!(r.avg_forwarder_set > 0.0);
}
