//! End-to-end integration: the simulated forwarding layer feeding the real
//! cryptographic payment layer.
//!
//! A full scenario runs under the incentive mechanism; one bundle's
//! accounting is then settled through the actual bank — blind-signed
//! bearer tokens, escrow, MAC'd receipts — and the credited amounts must
//! equal the simulator's own `m·P_f + P_r/‖π‖` accounting.

use idpa::payment::bank::Bank;
use idpa::payment::escrow::Escrow;
use idpa::payment::receipt::{Receipt, ReceiptBook};
use idpa::payment::token::Wallet;
use idpa::prelude::*;

#[test]
fn simulation_bundle_settles_through_real_bank() {
    // -- run the forwarding simulation ----------------------------------
    let cfg = ScenarioConfig::quick_test(123);
    let world = World::generate(&cfg);
    let pair0 = world.pairs[0].clone();
    let result = SimulationRun::execute(cfg);
    assert!(result.connections > 0);

    // -- replay pair 0's bundle through the payment system --------------
    // Re-derive the bundle accounting of pair 0 by re-running the same
    // deterministic simulation and capturing it via the public API: here
    // we reconstruct a small synthetic bundle consistent with the pair's
    // contract instead (the simulator's numeric accounting is already
    // asserted against BundleAccounting's unit tests).
    let pf = pair0.pf.round() as u64;
    let pr = (pair0.pf * 1.0).round() as u64; // tau = 1 in quick_test

    let streams = StreamFactory::new(9);
    let mut rng = streams.stream("e2e");
    let mut bank = Bank::new(256, &mut rng);
    let initiator_acct = bank.open_account(1_000_000);
    let f1 = bank.open_account(0);
    let f2 = bank.open_account(0);

    // Bundle: 3 connections; f1 forwards on all 3, f2 on 1.
    let k = 3u32;
    let max_hops = 8u32;
    let budget = Escrow::required_budget(pf, pr, k, max_hops);
    let mut wallet = Wallet::new();
    bank.withdraw_into_wallet(initiator_acct, budget, &mut wallet, &mut rng)
        .unwrap();
    let mut escrow =
        Escrow::open(&mut bank, 7, pf, pr, wallet.take_exact(budget).unwrap()).unwrap();

    let key = b"e2e bundle key";
    let mut book = ReceiptBook::new();
    for conn in 0..k {
        book.add(Receipt::issue(key, 7, conn, 0, f1));
    }
    book.add(Receipt::issue(key, 7, 1, 1, f2));

    let mut refund = Wallet::new();
    let report = escrow
        .settle(&mut bank, key, &book, &mut refund, &mut rng)
        .unwrap();

    // -- the bank's credits equal the paper's formula --------------------
    assert_eq!(report.forwarder_set_size, 2);
    let share = pr / 2;
    assert_eq!(bank.balance(f1), Some(3 * pf + share));
    assert_eq!(bank.balance(f2), Some(pf + share));

    // Value conservation across the whole flow.
    assert_eq!(
        bank.total_deposits() + bank.outstanding(),
        1_000_000,
        "no credits created or destroyed"
    );
}

#[test]
fn simulator_accounting_matches_bundle_formula() {
    // The simulator's per-(bundle, forwarder) payoff samples must all be
    // explainable as m*P_f + P_r/set - costs with m >= 1: in particular no
    // sample may exceed the theoretical maximum for its bundle.
    let cfg = ScenarioConfig::quick_test(5);
    let max_pf = cfg.pf_range.1;
    let max_conns = cfg.max_connections as f64;
    let result = SimulationRun::execute(cfg);
    let theoretical_max = max_conns * cfg.policy.max_hops as f64 * max_pf + cfg.tau * max_pf;
    for &p in result.good_payoffs.iter().chain(&result.malicious_payoffs) {
        assert!(p <= theoretical_max, "payoff {p} exceeds theoretical max");
    }
}

#[test]
fn run_result_metrics_are_internally_consistent() {
    let result = SimulationRun::execute(ScenarioConfig::quick_test(77));
    // Routing efficiency is exactly payoff / forwarders.
    let expect = result.avg_good_payoff / result.avg_forwarder_set;
    assert!((result.routing_efficiency - expect).abs() < 1e-9);
    // Q = L / set, averaged per pair, must be within the global bounds.
    assert!(result.avg_path_quality > 0.0);
    assert!(result.avg_path_length <= result.avg_forwarder_set * result.avg_path_quality * 10.0);
    // Probabilistic quantities are probabilities.
    assert!((0.0..=1.0).contains(&result.new_edge_fraction));
    assert!((0.0..=1.0).contains(&result.reformation_rate));
    assert!((0.0..=1.0).contains(&result.avg_anonymity_degree));
}

#[test]
fn measured_trace_replay_round_trips() {
    // Export the synthetic churn trace, re-import it (as one would a
    // measured trace), and run the identical simulation on it.
    use idpa::netmodel::{trace_from_csv, trace_to_csv};

    let cfg = ScenarioConfig::quick_test(55);
    let world = World::generate(&cfg);
    let csv = trace_to_csv(&world.schedules);
    let replayed = trace_from_csv(&csv, cfg.n_nodes).expect("trace parses");
    assert_eq!(replayed, *world.schedules);

    let mut replay_world = world.clone();
    replay_world.schedules = replayed.into();

    let a = {
        let mut run = SimulationRun::new(cfg, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
        run.finish()
    };
    let b = {
        let mut run = SimulationRun::new(cfg, replay_world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
        run.finish()
    };
    assert_eq!(a.avg_good_payoff, b.avg_good_payoff);
    assert_eq!(a.good_payoffs, b.good_payoffs);
}

#[test]
fn common_random_numbers_isolate_the_strategy_axis() {
    // Same seed, different strategy: the world (churn, workload, costs)
    // must be identical, so metric differences are attributable to routing.
    let base = ScenarioConfig::quick_test(31);
    let w1 = World::generate(&ScenarioConfig {
        good_strategy: RoutingStrategy::Random,
        ..base
    });
    let w2 = World::generate(&ScenarioConfig {
        good_strategy: RoutingStrategy::Utility(UtilityModel::ModelI),
        ..base
    });
    assert_eq!(w1.pairs, w2.pairs);
    assert_eq!(w1.schedules, w2.schedules);
    assert_eq!(w1.topology, w2.topology);
}
