//! Property-based tests over the core data structures and invariants.
//!
//! Randomized with fixed-seed Xoshiro256** streams (in-tree, offline)
//! instead of an external property-testing framework: every property runs
//! a few hundred generated cases and is exactly reproducible.

use idpa::core::bundle::BundleAccounting;
use idpa::core::history::HistoryProfile;
use idpa::core::metrics::{anonymity_degree, entropy_bits, ReformationTracker};
use idpa::crypto::bigint::BigUint;
use idpa::desim::calendar::Calendar;
use idpa::desim::stats::{Ecdf, OnlineStats};
use idpa::netmodel::{ChurnConfig, ChurnModel, Pareto};
use idpa::prelude::*;
use rand::RngExt as _;

const CASES: usize = 256;

fn rng(seed: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(seed)
}

fn random_len(r: &mut Xoshiro256StarStar, lo: usize, hi: usize) -> usize {
    lo + (r.next() as usize) % (hi - lo)
}

fn random_u64s(r: &mut Xoshiro256StarStar, lo: usize, hi: usize) -> Vec<u64> {
    let n = random_len(r, lo, hi);
    (0..n).map(|_| r.next()).collect()
}

fn random_f64s(r: &mut Xoshiro256StarStar, lo: f64, hi: f64, min: usize, max: usize) -> Vec<f64> {
    let n = random_len(r, min, max);
    (0..n)
        .map(|_| lo + r.random_range(0.0..1.0) * (hi - lo))
        .collect()
}

fn biguint_from(parts: &[u64]) -> BigUint {
    // Build from big-endian bytes of the parts.
    let bytes: Vec<u8> = parts.iter().flat_map(|p| p.to_be_bytes()).collect();
    BigUint::from_bytes_be(&bytes)
}

// ---------------- bigint ------------------------------------------

/// Division reconstruction: a = q*b + r with r < b, for arbitrary widths
/// (covers the Knuth Algorithm D path).
#[test]
fn bigint_divrem_reconstructs() {
    let mut r = rng(0x3001);
    let mut ran = 0;
    while ran < CASES {
        let a = biguint_from(&random_u64s(&mut r, 1, 6));
        let b = biguint_from(&random_u64s(&mut r, 1, 4));
        if b.is_zero() {
            continue;
        }
        ran += 1;
        let (q, rem) = a.divrem(&b);
        assert!(rem < b);
        assert_eq!(q.mul(&b).add(&rem), a);
    }
}

/// Add/sub round trip.
#[test]
fn bigint_add_sub_round_trip() {
    let mut r = rng(0x3002);
    for _ in 0..CASES {
        let a = biguint_from(&random_u64s(&mut r, 1, 5));
        let b = biguint_from(&random_u64s(&mut r, 1, 5));
        assert_eq!(a.add(&b).sub(&b), a);
    }
}

/// Multiplication is commutative and distributes over addition.
#[test]
fn bigint_mul_laws() {
    let mut r = rng(0x3003);
    for _ in 0..CASES {
        let a = BigUint::from_u64(r.next());
        let b = BigUint::from_u64(r.next());
        let c = BigUint::from_u64(r.next());
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}

/// Byte serialisation round-trips.
#[test]
fn bigint_bytes_round_trip() {
    let mut r = rng(0x3004);
    for _ in 0..CASES {
        let len = random_len(&mut r, 0, 64);
        let bytes: Vec<u8> = (0..len).map(|_| (r.next() & 0xff) as u8).collect();
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&n.to_bytes_be());
        assert_eq!(n, back);
    }
}

/// Modular inverse, when it exists, actually inverts.
#[test]
fn bigint_mod_inverse_inverts() {
    let mut r = rng(0x3005);
    for _ in 0..CASES {
        let a = BigUint::from_u64(1 + r.next() % (u64::MAX - 1));
        let m = BigUint::from_u64(3 + r.next() % (u64::MAX - 3));
        if let Some(inv) = a.mod_inverse(&m) {
            assert_eq!(a.mulmod(&inv, &m), BigUint::one());
        }
    }
}

// ---------------- stats -------------------------------------------

/// OnlineStats::merge equals pushing everything into one collector.
#[test]
fn stats_merge_is_concatenation() {
    let mut r = rng(0x3006);
    for _ in 0..CASES {
        let xs = random_f64s(&mut r, -1e6, 1e6, 0, 50);
        let ys = random_f64s(&mut r, -1e6, 1e6, 0, 50);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            a.push(x);
            whole.push(x);
        }
        for &y in &ys {
            b.push(y);
            whole.push(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            assert!((a.mean() - whole.mean()).abs() < 1e-6);
            assert!((a.variance() - whole.variance()).abs() < 1e-3);
        }
    }
}

/// ECDF is monotone non-decreasing and bounded by [0, 1].
#[test]
fn ecdf_is_monotone() {
    let mut r = rng(0x3007);
    for _ in 0..CASES {
        let xs = random_f64s(&mut r, -1e3, 1e3, 1, 100);
        let probes = random_f64s(&mut r, -2e3, 2e3, 2, 20);
        let mut e = Ecdf::from_samples(xs);
        let mut sorted = probes;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for p in sorted {
            let v = e.eval(p);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev);
            prev = v;
        }
    }
}

/// Every quantile is an element of the sample.
#[test]
fn ecdf_quantile_is_a_sample() {
    let mut r = rng(0x3008);
    for _ in 0..CASES {
        let xs = random_f64s(&mut r, -1e3, 1e3, 1, 50);
        let q = r.random_range(0.0..1.0);
        let mut e = Ecdf::from_samples(xs.clone());
        let v = e.quantile(q);
        assert!(xs.contains(&v));
    }
}

// ---------------- desim calendar ------------------------------------

/// The calendar pops every scheduled event exactly once, in
/// non-decreasing time order.
#[test]
fn calendar_pops_sorted_and_complete() {
    let mut r = rng(0x3009);
    for _ in 0..CASES {
        let times = random_f64s(&mut r, 0.0, 1e4, 0, 200);
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(t), i);
        }
        let mut popped = Vec::new();
        let mut prev = SimTime::ZERO;
        while let Some(entry) = cal.pop() {
            assert!(entry.time >= prev);
            prev = entry.time;
            popped.push(entry.event);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }
}

// ---------------- netmodel ------------------------------------------

/// Pareto samples never fall below the scale parameter and the CDF at
/// the empirical median is near 1/2.
#[test]
fn pareto_respects_support() {
    let mut r = rng(0x300a);
    for _ in 0..CASES {
        let median = 1.0 + r.random_range(0.0..1.0) * 999.0;
        let shape = 0.5 + r.random_range(0.0..1.0) * 4.5;
        let d = Pareto::from_median(median, shape);
        let mut sample_rng = Xoshiro256StarStar::seed_from_u64(r.next());
        for _ in 0..100 {
            let x = d.sample(&mut sample_rng);
            assert!(x >= d.scale());
            assert!((0.0..=1.0).contains(&d.cdf(x)));
        }
        assert!((d.cdf(median) - 0.5).abs() < 1e-9);
    }
}

/// Churn schedules are sorted, disjoint, within the horizon, and
/// availability lies in [0, 1].
#[test]
fn churn_schedules_are_wellformed() {
    let mut r = rng(0x300b);
    // Schedule generation over a full horizon is the expensive kernel
    // here; a reduced case count keeps the suite fast.
    for _ in 0..CASES / 4 {
        let n = random_len(&mut r, 1, 30);
        let cfg = ChurnConfig {
            n_nodes: n,
            ..ChurnConfig::default()
        };
        let scheds =
            ChurnModel::new(cfg).generate(&mut Xoshiro256StarStar::seed_from_u64(r.next()));
        for s in &scheds {
            let mut prev_end = 0.0;
            for &(a, b) in s.sessions() {
                assert!(a < b);
                assert!(a >= prev_end);
                assert!(b <= cfg.horizon + 1e-9);
                prev_end = b;
            }
            let avail = s.availability();
            assert!((0.0..=1.0 + 1e-9).contains(&avail));
        }
    }
}

// ---------------- overlay -------------------------------------------

/// Random topologies always have exact degree, no self-loops, no
/// duplicates.
#[test]
fn topology_invariants() {
    let mut r = rng(0x300c);
    for _ in 0..CASES {
        let n = random_len(&mut r, 2, 40);
        let d = (n - 1).min(5);
        let t = Topology::random(n, d, &mut Xoshiro256StarStar::seed_from_u64(r.next()));
        for i in 0..n {
            let nbrs = t.neighbors(NodeId(i));
            assert_eq!(nbrs.len(), d);
            assert!(nbrs.iter().all(|v| v.index() != i));
            let mut uniq = nbrs.to_vec();
            uniq.dedup();
            assert_eq!(uniq.len(), d);
        }
    }
}

/// Probe availability estimates sum to 1 over the neighbor set once
/// anything was observed, and each lies in [0, 1].
#[test]
fn probe_availability_is_a_distribution() {
    let mut r = rng(0x300d);
    for _ in 0..CASES {
        let rounds = random_len(&mut r, 1, 30);
        let liveness: Vec<[bool; 4]> = (0..rounds)
            .map(|_| {
                let bits = r.next();
                [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0]
            })
            .collect();
        let mut est = ProbeEstimator::new(NodeId(0), 1.0, (1..=4).map(NodeId).collect());
        let mut probe_rng = Xoshiro256StarStar::seed_from_u64(r.next());
        let mut anything = false;
        for round in &liveness {
            anything |= round.iter().any(|&b| b);
            est.probe_round(|v| round[v.index() - 1], &mut probe_rng);
        }
        let total: f64 = (1..=4).map(|i| est.availability(NodeId(i))).sum();
        if anything {
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
        } else {
            assert_eq!(total, 0.0);
        }
    }
}

// ---------------- core ----------------------------------------------

/// Selectivity is a probability and the per-target selectivities over
/// one predecessor sum to at most 1.
#[test]
fn selectivity_is_bounded() {
    let mut r = rng(0x300e);
    for _ in 0..CASES {
        let n_records = random_len(&mut r, 0, 30);
        let succs: Vec<usize> = (0..n_records).map(|_| (r.next() % 5) as usize).collect();
        let mut h = HistoryProfile::new(NodeId(9));
        for (conn, &s) in succs.iter().enumerate() {
            h.record(BundleId(0), conn as u32, NodeId(8), NodeId(s));
        }
        let priors = succs.len() as u32;
        let mut total = 0.0;
        for v in 0..5 {
            let sigma = h.selectivity(BundleId(0), priors, NodeId(v));
            assert!((0.0..=1.0).contains(&sigma));
            total += sigma;
        }
        assert!(total <= 1.0 + 1e-9);
    }
}

/// Bundle payoffs: gross benefits over a bundle sum to
/// `instances*P_f + P_r` (the routing pool is fully distributed).
#[test]
fn bundle_benefit_conservation() {
    let mut r = rng(0x300f);
    for _ in 0..CASES {
        let n_paths = random_len(&mut r, 1, 10);
        let pf = 1.0 + r.random_range(0.0..1.0) * 99.0;
        let pr = r.random_range(0.0..1.0) * 400.0;
        let mut b = BundleAccounting::new();
        let mut total_instances = 0usize;
        for _ in 0..n_paths {
            let len = random_len(&mut r, 1, 5);
            let nodes: Vec<NodeId> = (0..len).map(|_| NodeId((r.next() % 8) as usize)).collect();
            let costs = vec![0.0; nodes.len()];
            total_instances += nodes.len();
            b.record_connection(&nodes, &costs);
        }
        let gross: f64 = b
            .forwarder_set()
            .iter()
            .map(|&f| b.gross_benefit(f, pf, pr))
            .sum();
        let expect = total_instances as f64 * pf + pr;
        assert!(
            (gross - expect).abs() < 1e-6,
            "gross {gross} expect {expect}"
        );
    }
}

/// The reformation tracker's new-edge fraction is a probability, and
/// replaying identical paths drives it down monotonically.
#[test]
fn reformation_fraction_bounded() {
    let mut r = rng(0x3010);
    for _ in 0..CASES {
        let n_edges = random_len(&mut r, 1, 10);
        let path: Vec<(NodeId, NodeId)> = (0..n_edges)
            .map(|_| {
                (
                    NodeId((r.next() % 10) as usize),
                    NodeId((r.next() % 10) as usize),
                )
            })
            .collect();
        let reps = random_len(&mut r, 1, 10);
        let mut t = ReformationTracker::new();
        let mut prev = 1.0;
        for _ in 0..reps {
            t.record(&path);
            let frac = t.new_edge_fraction();
            assert!((0.0..=1.0).contains(&frac));
            assert!(frac <= prev + 1e-12);
            prev = frac;
        }
    }
}

/// Entropy-based degree of anonymity stays in [0, 1] for arbitrary
/// normalised distributions.
#[test]
fn anonymity_degree_bounded() {
    let mut r = rng(0x3011);
    for _ in 0..CASES {
        let n = random_len(&mut r, 2, 20);
        let weights: Vec<f64> = (0..n)
            .map(|_| 0.01 + r.random_range(0.0..1.0) * 9.99)
            .collect();
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let h = entropy_bits(&probs);
        assert!(h >= 0.0);
        let d = anonymity_degree(&probs);
        assert!((0.0..=1.0 + 1e-9).contains(&d));
    }
}
