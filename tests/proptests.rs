//! Property-based tests over the core data structures and invariants.

use idpa::core::bundle::BundleAccounting;
use idpa::core::history::HistoryProfile;
use idpa::core::metrics::{anonymity_degree, entropy_bits, ReformationTracker};
use idpa::crypto::bigint::BigUint;
use idpa::desim::calendar::Calendar;
use idpa::desim::stats::{Ecdf, OnlineStats};
use idpa::netmodel::{ChurnConfig, ChurnModel, Pareto};
use idpa::prelude::*;
use proptest::prelude::*;

fn biguint_from(parts: &[u64]) -> BigUint {
    // Build from big-endian bytes of the parts.
    let bytes: Vec<u8> = parts.iter().flat_map(|p| p.to_be_bytes()).collect();
    BigUint::from_bytes_be(&bytes)
}

proptest! {
    // ---------------- bigint ------------------------------------------

    /// Division reconstruction: a = q*b + r with r < b, for arbitrary
    /// widths (covers the Knuth Algorithm D path).
    #[test]
    fn bigint_divrem_reconstructs(a in prop::collection::vec(any::<u64>(), 1..6),
                                  b in prop::collection::vec(any::<u64>(), 1..4)) {
        let a = biguint_from(&a);
        let b = biguint_from(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    /// Add/sub round trip.
    #[test]
    fn bigint_add_sub_round_trip(a in prop::collection::vec(any::<u64>(), 1..5),
                                 b in prop::collection::vec(any::<u64>(), 1..5)) {
        let a = biguint_from(&a);
        let b = biguint_from(&b);
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    /// Multiplication is commutative and distributes over addition.
    #[test]
    fn bigint_mul_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    /// Byte serialisation round-trips.
    #[test]
    fn bigint_bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, back);
    }

    /// Modular inverse, when it exists, actually inverts.
    #[test]
    fn bigint_mod_inverse_inverts(a in 1u64.., m in 3u64..) {
        let a = BigUint::from_u64(a);
        let m = BigUint::from_u64(m);
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mulmod(&inv, &m), BigUint::one());
        }
    }

    // ---------------- stats -------------------------------------------

    /// OnlineStats::merge equals pushing everything into one collector.
    #[test]
    fn stats_merge_is_concatenation(xs in prop::collection::vec(-1e6f64..1e6, 0..50),
                                    ys in prop::collection::vec(-1e6f64..1e6, 0..50)) {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for &x in &xs { a.push(x); whole.push(x); }
        for &y in &ys { b.push(y); whole.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
        }
    }

    /// ECDF is monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn ecdf_is_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                        probes in prop::collection::vec(-2e3f64..2e3, 2..20)) {
        let mut e = Ecdf::from_samples(xs);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for p in sorted {
            let v = e.eval(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Every quantile is an element of the sample.
    #[test]
    fn ecdf_quantile_is_a_sample(xs in prop::collection::vec(-1e3f64..1e3, 1..50),
                                 q in 0.0f64..=1.0) {
        let mut e = Ecdf::from_samples(xs.clone());
        let v = e.quantile(q);
        prop_assert!(xs.contains(&v));
    }

    // ---------------- desim calendar ------------------------------------

    /// The calendar pops every scheduled event exactly once, in
    /// non-decreasing time order.
    #[test]
    fn calendar_pops_sorted_and_complete(times in prop::collection::vec(0.0f64..1e4, 0..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(t), i);
        }
        let mut popped = Vec::new();
        let mut prev = SimTime::ZERO;
        while let Some(entry) = cal.pop() {
            prop_assert!(entry.time >= prev);
            prev = entry.time;
            popped.push(entry.event);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    // ---------------- netmodel ------------------------------------------

    /// Pareto samples never fall below the scale parameter and the CDF at
    /// the empirical median is near 1/2.
    #[test]
    fn pareto_respects_support(median in 1.0f64..1e3, shape in 0.5f64..5.0, seed in any::<u64>()) {
        let d = Pareto::from_median(median, shape);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= d.scale());
            prop_assert!((0.0..=1.0).contains(&d.cdf(x)));
        }
        prop_assert!((d.cdf(median) - 0.5).abs() < 1e-9);
    }

    /// Churn schedules are sorted, disjoint, within the horizon, and
    /// availability lies in [0, 1].
    #[test]
    fn churn_schedules_are_wellformed(seed in any::<u64>(), n in 1usize..30) {
        let cfg = ChurnConfig { n_nodes: n, ..ChurnConfig::default() };
        let scheds = ChurnModel::new(cfg).generate(
            &mut Xoshiro256StarStar::seed_from_u64(seed));
        for s in &scheds {
            let mut prev_end = 0.0;
            for &(a, b) in s.sessions() {
                prop_assert!(a < b);
                prop_assert!(a >= prev_end);
                prop_assert!(b <= cfg.horizon + 1e-9);
                prev_end = b;
            }
            let avail = s.availability();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&avail));
        }
    }

    // ---------------- overlay -------------------------------------------

    /// Random topologies always have exact degree, no self-loops, no
    /// duplicates.
    #[test]
    fn topology_invariants(seed in any::<u64>(), n in 2usize..40) {
        let d = (n - 1).min(5);
        let t = Topology::random(n, d, &mut Xoshiro256StarStar::seed_from_u64(seed));
        for i in 0..n {
            let nbrs = t.neighbors(NodeId(i));
            prop_assert_eq!(nbrs.len(), d);
            prop_assert!(nbrs.iter().all(|v| v.index() != i));
            let mut uniq = nbrs.to_vec();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), d);
        }
    }

    /// Probe availability estimates sum to 1 over the neighbor set once
    /// anything was observed, and each lies in [0, 1].
    #[test]
    fn probe_availability_is_a_distribution(
        seed in any::<u64>(),
        liveness in prop::collection::vec(prop::collection::vec(any::<bool>(), 4), 1..30),
    ) {
        let mut est = ProbeEstimator::new(
            NodeId(0), 1.0, (1..=4).map(NodeId).collect());
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut anything = false;
        for round in &liveness {
            anything |= round.iter().any(|&b| b);
            est.probe_round(|v| round[v.index() - 1], &mut rng);
        }
        let total: f64 = (1..=4).map(|i| est.availability(NodeId(i))).sum();
        if anything {
            prop_assert!((total - 1.0).abs() < 1e-9, "total {}", total);
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    // ---------------- core ----------------------------------------------

    /// Selectivity is a probability and the per-target selectivities over
    /// one predecessor sum to at most 1.
    #[test]
    fn selectivity_is_bounded(succs in prop::collection::vec(0usize..5, 0..30)) {
        let mut h = HistoryProfile::new(NodeId(9));
        for (conn, &s) in succs.iter().enumerate() {
            h.record(BundleId(0), conn as u32, NodeId(8), NodeId(s));
        }
        let priors = succs.len() as u32;
        let mut total = 0.0;
        for v in 0..5 {
            let sigma = h.selectivity(BundleId(0), priors, NodeId(v));
            prop_assert!((0.0..=1.0).contains(&sigma));
            total += sigma;
        }
        prop_assert!(total <= 1.0 + 1e-9);
    }

    /// Bundle payoffs: gross benefits over a bundle sum to
    /// `instances*P_f + P_r` (the routing pool is fully distributed).
    #[test]
    fn bundle_benefit_conservation(
        paths in prop::collection::vec(prop::collection::vec(0usize..8, 1..5), 1..10),
        pf in 1.0f64..100.0,
        pr in 0.0f64..400.0,
    ) {
        let mut b = BundleAccounting::new();
        let mut total_instances = 0usize;
        for p in &paths {
            let nodes: Vec<NodeId> = p.iter().map(|&i| NodeId(i)).collect();
            let costs = vec![0.0; nodes.len()];
            total_instances += nodes.len();
            b.record_connection(&nodes, &costs);
        }
        let gross: f64 = b.forwarder_set().iter()
            .map(|&f| b.gross_benefit(f, pf, pr))
            .sum();
        let expect = total_instances as f64 * pf + pr;
        prop_assert!((gross - expect).abs() < 1e-6, "gross {} expect {}", gross, expect);
    }

    /// The reformation tracker's new-edge fraction is a probability, and
    /// replaying identical paths drives it down monotonically.
    #[test]
    fn reformation_fraction_bounded(edges in prop::collection::vec((0usize..10, 0usize..10), 1..10),
                                    reps in 1usize..10) {
        let mut t = ReformationTracker::new();
        let path: Vec<(NodeId, NodeId)> =
            edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect();
        let mut prev = 1.0;
        for _ in 0..reps {
            t.record(&path);
            let frac = t.new_edge_fraction();
            prop_assert!((0.0..=1.0).contains(&frac));
            prop_assert!(frac <= prev + 1e-12);
            prev = frac;
        }
    }

    /// Entropy-based degree of anonymity stays in [0, 1] for arbitrary
    /// normalised distributions.
    #[test]
    fn anonymity_degree_bounded(weights in prop::collection::vec(0.01f64..10.0, 2..20)) {
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let h = entropy_bits(&probs);
        prop_assert!(h >= 0.0);
        let d = anonymity_degree(&probs);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
    }
}
