#!/usr/bin/env bash
# Bench-trajectory gate: proves every bench binary still runs, then does
# short timed passes of the gated benches (history_shard via
# IDPA_HS_QUICK=1, probe_maintenance via IDPA_PM_QUICK=1, node_lifecycle
# via IDPA_NL_QUICK=1, settlement via IDPA_ST_QUICK=1, service_mode via
# IDPA_SVC_QUICK=1, adversary_zoo via IDPA_AZ_QUICK=1, bank_durability
# via IDPA_BD_QUICK=1) and fails if any freshly measured point regresses
# more than IDPA_BENCH_GATE_PCT percent (default 20) against the best
# value that key has ever had in a committed BENCH_*.json report.
#
# Runnable locally: ./scripts/bench_gate.sh
#
# Caveat the threshold exists for: CI runners and dev machines differ, so
# absolute ns/iter comparisons across hardware are loose — the default 20%
# margin catches trajectory-level regressions (an accidental O(N) in a
# kernel), not single-digit drift. Raise IDPA_BENCH_GATE_PCT when gating
# on noisy shared runners.
set -euo pipefail
cd "$(dirname "$0")/.."

pct="${IDPA_BENCH_GATE_PCT:-20}"

stage="bench smoke"
fresh=""
fresh_pm=""
fresh_nl=""
fresh_st=""
fresh_svc=""
fresh_az=""
fresh_bd=""
trap 'status=$?; [ -n "$fresh" ] && rm -f "$fresh"
      [ -n "$fresh_pm" ] && rm -f "$fresh_pm"
      [ -n "$fresh_nl" ] && rm -f "$fresh_nl"
      [ -n "$fresh_st" ] && rm -f "$fresh_st"
      [ -n "$fresh_svc" ] && rm -f "$fresh_svc"
      [ -n "$fresh_az" ] && rm -f "$fresh_az"
      [ -n "$fresh_bd" ] && rm -f "$fresh_bd"
      if [ "$status" -ne 0 ]; then
        echo "bench gate: FAILED in stage: $stage (exit $status)" >&2
      fi' EXIT

# 1. Every bench binary runs its kernels once (untimed) — bench rot check.
IDPA_BENCH_SMOKE=1 cargo bench --offline -p idpa-bench

# 2. Short timed passes of the gated benches: sharded formation,
# maintenance-heavy lazy probing, and the lazy node lifecycle. Each binary
# writes its own report; they are concatenated into one fresh file (the
# awk below parses flat "name": ns lines, so back-to-back JSON objects
# compare fine), and the comparison gates every point at once.
stage="timed history_shard pass"
fresh="$(mktemp)"
fresh_pm="$(mktemp)"
fresh_nl="$(mktemp)"
fresh_st="$(mktemp)"
fresh_svc="$(mktemp)"
fresh_az="$(mktemp)"
fresh_bd="$(mktemp)"
IDPA_HS_QUICK=1 IDPA_BENCH_OUT="$fresh" \
    cargo bench --offline -p idpa-bench --bench history_shard

stage="timed probe_maintenance pass"
IDPA_PM_QUICK=1 IDPA_BENCH_OUT="$fresh_pm" \
    cargo bench --offline -p idpa-bench --bench probe_maintenance
cat "$fresh_pm" >> "$fresh"

stage="timed node_lifecycle pass"
IDPA_NL_QUICK=1 IDPA_BENCH_OUT="$fresh_nl" \
    cargo bench --offline -p idpa-bench --bench node_lifecycle
cat "$fresh_nl" >> "$fresh"

# The settlement pass also asserts the epoch-vs-per-receipt speedup floor
# inside the bench binary itself, so a collapsed batching win fails here
# even before the ns/iter comparison below.
stage="timed settlement pass"
IDPA_ST_QUICK=1 IDPA_BENCH_OUT="$fresh_st" \
    cargo bench --offline -p idpa-bench --bench settlement
cat "$fresh_st" >> "$fresh"

# The service_mode pass also asserts (inside the binary) that the chunked
# service loop stays within 25% of the straight-line runner and that
# checkpointed + resumed runs match the uninterrupted result exactly.
stage="timed service_mode pass"
IDPA_SVC_QUICK=1 IDPA_BENCH_OUT="$fresh_svc" \
    cargo bench --offline -p idpa-bench --bench service_mode
cat "$fresh_svc" >> "$fresh"

# The adversary_zoo pass also asserts (inside the binary) that the clique
# cross-confirmation defense costs no more than 10% over the unarmed arm
# and that it flags >= 90% of the phantoms the cliques inject.
stage="timed adversary_zoo pass"
IDPA_AZ_QUICK=1 IDPA_BENCH_OUT="$fresh_az" \
    cargo bench --offline -p idpa-bench --bench adversary_zoo
cat "$fresh_az" >> "$fresh"

# The bank_durability pass also asserts (inside the binary) that WAL-on
# settlement stays within 15% of the bare ledger and that cold recovery
# and the warm replica both land on the live ledger's exact digest.
stage="timed bank_durability pass"
IDPA_BD_QUICK=1 IDPA_BENCH_OUT="$fresh_bd" \
    cargo bench --offline -p idpa-bench --bench bank_durability
cat "$fresh_bd" >> "$fresh"

# 3. Compare each fresh point against the best committed value for the
# same key across every BENCH_*.json in the repo (flat "name": ns maps).
stage="regression comparison"
awk -v pct="$pct" -v freshfile="$fresh" '
    function trim(s) { gsub(/[ \t",]/, "", s); return s }
    FNR == 1 { isfresh = (FILENAME == freshfile) }
    /:/ {
        i = index($0, ":")
        key = trim(substr($0, 1, i - 1))
        val = trim(substr($0, i + 1)) + 0
        if (key == "" || val <= 0) next
        if (isfresh) fresh[key] = val
        else if (!(key in best) || val < best[key]) best[key] = val
    }
    END {
        bad = 0
        for (k in fresh) {
            if (k in best) {
                limit = best[k] * (1 + pct / 100)
                if (fresh[k] > limit) {
                    printf "bench gate: REGRESSION %s: %.0f ns/iter exceeds %.0f (best committed %.0f +%s%%)\n", \
                        k, fresh[k], limit, best[k], pct
                    bad = 1
                } else {
                    printf "bench gate: ok %s: %.0f ns/iter (best committed %.0f)\n", \
                        k, fresh[k], best[k]
                }
            } else {
                printf "bench gate: new point %s: %.0f ns/iter (no committed prior)\n", k, fresh[k]
            }
        }
        exit bad
    }
' BENCH_*.json "$fresh"

stage="done"
echo "bench gate: OK"
