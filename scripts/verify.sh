#!/usr/bin/env bash
# Full offline verification: release build, test suite, lint, formatting,
# and a bench smoke pass. Everything runs with --offline — the workspace
# has no registry dependencies (the `rand` name resolves to the in-tree
# crates/rng).
#
# Each step sets $stage before running, and the EXIT trap names the
# failing stage in the last line of output, so a red CI job says which
# stage died without scrolling the log.
set -euo pipefail
cd "$(dirname "$0")/.."

stage="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then
        echo "verify: FAILED in stage: $stage (exit $status)" >&2
      fi' EXIT

stage="build (cargo build --release --offline)"
cargo build --release --offline

# --workspace matters: the root is itself a package (the idpa facade), so
# a bare `cargo test` would run only its 48 tests and skip every member
# crate's suite.
stage="test (cargo test -q --offline --workspace)"
cargo test -q --offline --workspace

stage="lint (cargo clippy --all-targets -- -D warnings)"
cargo clippy --all-targets --offline -- -D warnings

stage="format (cargo fmt --check)"
cargo fmt --check

# Every bench binary must at least run its kernels once (no timing, no
# report file) so bench rot is caught without paying for a full run.
stage="bench smoke (IDPA_BENCH_SMOKE=1 cargo bench)"
IDPA_BENCH_SMOKE=1 cargo bench --offline -p idpa-bench

# End-to-end fault-injection smoke: one severity per fault class (crash,
# drop+delay, cheat, bank outage) crossed with every routing strategy at
# quick scale. The example asserts the zero-fault rows are perfectly clean,
# so this also guards the fault layer's "off means off" contract.
stage="fault smoke (IDPA_FAULT_SMOKE=1 fault_matrix example)"
IDPA_FAULT_SMOKE=1 cargo run --release --offline --example fault_matrix

# Epoch-settlement smoke: the fault matrix re-run with every fault class
# settled under both modes. Each row asserts the economics (payoffs,
# delivery, shortfall, flags, audit discrepancies) are identical between
# per-bundle and epoch settlement, so this guards the mode-invariance
# contract end to end; the CLI run then exercises the --settlement and
# --epoch-length flags through a real experiment.
stage="settlement smoke (IDPA_SETTLE_SMOKE=1 fault_matrix + epoch-mode CLI)"
IDPA_SETTLE_SMOKE=1 cargo run --release --offline --example fault_matrix
IDPA_FAULT_SMOKE=1 cargo run --release --offline -p idpa-sim -- fault-adaptation \
    --quick --reps 2 --settlement epoch --epoch-length 240 --out target/verify-results

# Adaptive-mode smoke: one quick static-vs-adaptive comparison through the
# real CLI, exercising --fault-response and --reputation-weight end to end
# (the adaptive arm runs reputation suppression, in-run cheater feedback,
# probe invalidation and escalated reformation).
stage="adaptive fault smoke (fault-adaptation experiment)"
IDPA_FAULT_SMOKE=1 cargo run --release --offline -p idpa-sim -- fault-adaptation \
    --quick --reps 2 --reputation-weight 0.2 --out target/verify-results

# Scale smoke: the lazy node lifecycle end to end through the real CLI —
# the scale-lifecycle experiment runs quick-tier sized worlds under
# --node-lifecycle lazy and prints the resident-state metrics (peak
# materialized nodes, evictions, slab bytes) in its report.
stage="scale smoke (IDPA_SCALE_SMOKE=1 scale-lifecycle experiment)"
IDPA_SCALE_SMOKE=1 cargo run --release --offline -p idpa-sim -- scale-lifecycle \
    --quick --node-lifecycle lazy --out target/verify-results

# Service-mode smoke: a short open-workload run through the real CLI,
# interrupted at t=0 by a zero wall-clock budget (which writes a final
# checkpoint), then resumed from that checkpoint — the resumed output must
# be line-identical to the uninterrupted run's, pinning the
# snapshot/resume determinism contract end to end. IDPA_SVC_SMOKE=1
# forces the quick tier inside the binary.
stage="service smoke (IDPA_SVC_SMOKE=1 open run -> snapshot -> resume)"
svc_dir="target/verify-service"
mkdir -p "$svc_dir"
svc_flags=(--seed 11 --workload open --open-arrival-rate 0.02
           --window-len 120 --window-warmup 120)
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${svc_flags[@]}" > "$svc_dir/uninterrupted.txt"
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${svc_flags[@]}" --max-wall-secs 0 \
    --snapshot-path "$svc_dir/run.snap" > /dev/null
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${svc_flags[@]}" --resume "$svc_dir/run.snap" > "$svc_dir/resumed.txt"
diff "$svc_dir/uninterrupted.txt" "$svc_dir/resumed.txt"
echo "service smoke: resumed run is line-identical to the uninterrupted run"

# Adversary-zoo smoke: every §4 strategy class (free riders, whitewashers,
# colluding cliques) with its matching defense off and on, at quick scale.
# The example asserts the economics (free riders earn zero, the rejoin
# schedule fires, the cross-check flags >= 90% of phantom payouts), so this
# guards the adversary layer end to end; the CLI run then exercises the
# --adversary-* flags through a real experiment.
stage="adversary smoke (IDPA_AZ_SMOKE=1 adversary_zoo example + CLI)"
IDPA_AZ_SMOKE=1 cargo run --release --offline --example adversary_zoo
IDPA_AZ_SMOKE=1 cargo run --release --offline -p idpa-sim -- adversary-zoo \
    --quick --reps 2 --out target/verify-results

# Fuzz smoke: the in-tree structured fuzzer over PathValidator,
# Bank::deposit_batch and EpochLedger — the committed regression corpus
# (tests/fuzz_corpus/) plus a short deterministic sweep. Bounded well under
# 30 s; the nightly CI tier reruns it with IDPA_FUZZ_LONG=1 at 100x the
# case budget.
stage="fuzz smoke (IDPA_FUZZ_SMOKE=1 fuzz_validator)"
IDPA_FUZZ_SMOKE=1 cargo test -q --offline -p idpa-payment --test fuzz_validator

# WAL durability smoke: the crash-anywhere recovery property suite (every
# byte-offset truncation and corruption of a recorded WAL must recover the
# intact prefix), the failover-equivalence matrix (bank crash x settlement
# mode x shards x snapshot/resume == uninterrupted), and one end-to-end
# service run with --bank-durability wal under a seeded bank-crash storm.
# The resumed durable run must be line-identical to the uninterrupted one.
stage="WAL smoke (IDPA_WAL_SMOKE=1 wal_recovery + bank_durability + durable service)"
IDPA_WAL_SMOKE=1 cargo test -q --offline -p idpa-payment --test wal_recovery
IDPA_WAL_SMOKE=1 cargo test -q --offline -p idpa-sim --test bank_durability
wal_dir="target/verify-wal"
mkdir -p "$wal_dir"
wal_flags=(
    --seed 11 --settlement epoch --bank-durability wal
    --fault-drop 0.05 --fault-bank-crash 0.5 --fault-bank-crash-torn 0.5
)
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${wal_flags[@]}" > "$wal_dir/uninterrupted.txt"
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${wal_flags[@]}" --max-wall-secs 0 \
    --snapshot-path "$wal_dir/run.snap" > /dev/null
IDPA_SVC_SMOKE=1 cargo run --release --offline -p idpa-sim -- service \
    "${wal_flags[@]}" --resume "$wal_dir/run.snap" > "$wal_dir/resumed.txt"
diff "$wal_dir/uninterrupted.txt" "$wal_dir/resumed.txt"
grep -q "audit chain verified: true" "$wal_dir/resumed.txt"
echo "WAL smoke: durable resumed run is line-identical and the audit chain verifies"

stage="done"
echo "verify: OK"
