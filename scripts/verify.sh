#!/usr/bin/env bash
# Full offline verification: release build, test suite, lint, formatting,
# and a bench smoke pass. Everything runs with --offline — the workspace
# has no registry dependencies (the `rand` name resolves to the in-tree
# crates/rng).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo fmt --check

# Every bench binary must at least run its kernels once (no timing, no
# report file) so bench rot is caught without paying for a full run.
IDPA_BENCH_SMOKE=1 cargo bench --offline -p idpa-bench

echo "verify: OK"
