#!/usr/bin/env bash
# Full offline verification: release build, test suite, lint, formatting,
# and a bench smoke pass. Everything runs with --offline — the workspace
# has no registry dependencies (the `rand` name resolves to the in-tree
# crates/rng).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo fmt --check

# Every bench binary must at least run its kernels once (no timing, no
# report file) so bench rot is caught without paying for a full run.
IDPA_BENCH_SMOKE=1 cargo bench --offline -p idpa-bench

# End-to-end fault-injection smoke: one severity per fault class (crash,
# drop+delay, cheat, bank outage) crossed with every routing strategy at
# quick scale. The example asserts the zero-fault rows are perfectly clean,
# so this also guards the fault layer's "off means off" contract.
IDPA_FAULT_SMOKE=1 cargo run --release --offline --example fault_matrix

echo "verify: OK"
