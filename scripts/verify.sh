#!/usr/bin/env bash
# Full offline verification: release build, test suite, and lint gate.
# Everything runs with --offline — the workspace has no registry
# dependencies (the `rand` name resolves to the in-tree crates/rng).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

echo "verify: OK"
