//! # idpa — Incentive-Driven P2P Anonymity System
//!
//! A full reproduction of *Ray, Slutzki, Zhang: Incentive-Driven P2P
//! Anonymity System: A Game-Theoretic Approach* (ICPP 2007), built from
//! scratch in Rust: the incentive mechanism itself plus every substrate the
//! paper's evaluation depends on (discrete-event simulation kernel, churn
//! and cost models, P2P overlay with active probing, an anonymity-
//! preserving payment system over from-scratch crypto, and a finite-game
//! framework).
//!
//! This facade crate re-exports the workspace so downstream users depend on
//! one crate:
//!
//! ```
//! use idpa::prelude::*;
//!
//! // Simulate the paper's default scenario at test scale.
//! let cfg = ScenarioConfig::quick_test(42);
//! let result = SimulationRun::execute(cfg);
//! assert!(result.avg_forwarder_set > 0.0);
//! ```
//!
//! Start with [`prelude`], or drill into the per-subsystem modules:
//! [`desim`], [`netmodel`], [`overlay`], [`crypto`], [`payment`], [`game`],
//! [`core`], [`sim`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Discrete-event simulation kernel (calendar, engine, RNG streams, stats).
pub use idpa_desim as desim;

/// Stochastic network substrate (churn, Pareto sessions, cost model).
pub use idpa_netmodel as netmodel;

/// P2P overlay (nodes, topology, active-probing availability estimation).
pub use idpa_overlay as overlay;

/// From-scratch crypto (bignum, RSA blind signatures, SHA-256, ChaCha20).
pub use idpa_crypto as crypto;

/// Anonymity-preserving payment system (bank, tokens, receipts, escrow).
pub use idpa_payment as payment;

/// Finite-game framework (normal form, extensive form, the stage game).
pub use idpa_game as game;

/// The paper's contribution: incentive-driven anonymity forwarding.
pub use idpa_core as core;

/// Full-system experiment driver (every table and figure of §3).
pub use idpa_sim as sim;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use idpa_core::bundle::{BundleAccounting, BundleId};
    pub use idpa_core::contract::Contract;
    pub use idpa_core::history::HistoryProfile;
    pub use idpa_core::path::{form_connection, PathOutcome};
    pub use idpa_core::quality::{EdgeQuality, Weights};
    pub use idpa_core::reputation::EdgeReputation;
    pub use idpa_core::routing::{PathPolicy, RoutingStrategy, RoutingView};
    pub use idpa_core::utility::{InitiatorUtility, UtilityModel};
    pub use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
    pub use idpa_desim::stats::{Ecdf, OnlineStats};
    pub use idpa_desim::{
        AdversaryConfig, AdversaryPlan, Engine, FaultConfig, FaultResponse, Process, SimTime,
    };
    pub use idpa_overlay::{NodeId, NodeKind, ProbeEstimator, ProbeInvalidation, Topology};
    pub use idpa_payment::{Bank, Escrow, Receipt, ReceiptBook, Token, Wallet};
    pub use idpa_sim::{
        BankDurability, RunResult, ScenarioConfig, SettlementMode, SimulationRun, World,
    };
}
