//! End-to-end anonymous payment walkthrough (the §2.2/§5 payment system).
//!
//! An initiator funds an escrow with blind-signed bearer tokens, a bundle
//! of connections completes, forwarders present receipts, the bank settles
//! `m·P_f + P_r/‖π‖` per forwarder — and every cheating attempt on the way
//! is shown to be rejected.
//!
//! ```text
//! cargo run --release --example anonymous_payment
//! ```

use idpa::crypto::bigint::BigUint;
use idpa::payment::bank::Bank;
use idpa::payment::escrow::Escrow;
use idpa::payment::receipt::{Receipt, ReceiptBook};
use idpa::payment::token::Wallet;
use idpa::payment::DepositError;
use idpa::prelude::{StreamFactory, Token};

fn main() {
    let streams = StreamFactory::new(42);
    let mut rng = streams.stream("payment-demo");

    // --- setup: a bank, the initiator, three forwarders -----------------
    println!("[1] bank opens with fresh RSA keys (512-bit, simulation scale)");
    let mut bank = Bank::new(512, &mut rng);
    let initiator = bank.open_account(10_000);
    let forwarders = [
        bank.open_account(0),
        bank.open_account(0),
        bank.open_account(0),
    ];

    // --- withdrawal: blind tokens ----------------------------------------
    // Contract: P_f = 50 per instance, P_r = 100 shared; 4 connections with
    // at most 3 hops each => escrow budget 4*3*50 + 100 = 700.
    let (pf, pr) = (50u64, 100u64);
    let budget = Escrow::required_budget(pf, pr, 4, 3);
    println!("[2] initiator withdraws {budget} credits as blind-signed bearer tokens");
    let mut wallet = Wallet::new();
    bank.withdraw_into_wallet(initiator, budget, &mut wallet, &mut rng)
        .expect("funds available");
    println!(
        "    wallet: {} tokens, {} credits; bank never saw a serial",
        wallet.len(),
        wallet.balance()
    );

    // --- escrow funding ---------------------------------------------------
    let bundle_id = 1u64;
    let tokens = wallet.take_exact(budget).expect("binary denominations");
    let mut escrow = Escrow::open(&mut bank, bundle_id, pf, pr, tokens).expect("tokens verify");
    println!(
        "[3] escrow funded with {} credits BEFORE any connection runs",
        escrow.funded()
    );
    println!("    (non-payment by the initiator is now impossible)");

    // --- the bundle runs: receipts accumulate -----------------------------
    // 4 connections; forwarder 0 on all of them, forwarder 1 on two,
    // forwarder 2 on one. The bundle key is shared between I and R.
    let bundle_key = b"bundle-1-shared-key";
    let mut book = ReceiptBook::new();
    for conn in 0..4u32 {
        book.add(Receipt::issue(
            bundle_key,
            bundle_id,
            conn,
            0,
            forwarders[0],
        ));
    }
    for conn in 0..2u32 {
        book.add(Receipt::issue(
            bundle_key,
            bundle_id,
            conn,
            1,
            forwarders[1],
        ));
    }
    book.add(Receipt::issue(bundle_key, bundle_id, 3, 1, forwarders[2]));
    println!(
        "[4] bundle complete: {} receipts collected on the reverse path",
        book.len()
    );

    // --- cheating attempts -------------------------------------------------
    println!("[5] cheating attempts:");

    // (a) A forwarder forges a receipt to inflate its count.
    let mut forged = Receipt::issue(bundle_key, bundle_id, 2, 1, forwarders[1]);
    forged.forwarder = forwarders[2]; // divert someone else's slot
    book.add(forged);
    println!("    (a) forged receipt added (diverted payee) — will be dropped at settlement");

    // (b) A replayed receipt (same connection+hop claimed twice).
    book.add(Receipt::issue(bundle_key, bundle_id, 0, 0, forwarders[0]));
    println!("    (b) replayed receipt added — will be dropped at settlement");

    // (c) A forged bearer token is rejected at deposit.
    let fake = Token {
        id: idpa::payment::token::TokenId::random(&mut rng),
        value: 1_000_000,
        signature: BigUint::from_u64(1234),
    };
    let err = bank.deposit(forwarders[0], &fake);
    println!("    (c) forged token deposit: {err:?}");
    assert_eq!(err, Err(DepositError::InvalidSignature));

    // --- settlement --------------------------------------------------------
    let mut refund_wallet = Wallet::new();
    let report = escrow
        .settle(&mut bank, bundle_key, &book, &mut refund_wallet, &mut rng)
        .expect("valid receipts settle");
    println!(
        "[6] settlement: ‖π‖ = {}, {} receipts rejected",
        report.forwarder_set_size, report.rejected_receipts
    );
    for (acct, amount) in &report.payouts {
        println!("    account {acct:?} paid {amount} credits (= m*P_f + P_r/‖π‖)");
    }
    println!(
        "    refund to initiator: {} credits as fresh blind tokens",
        report.refund
    );

    // --- double-spend check -------------------------------------------------
    println!("[7] double-spend: refund tokens deposit once, then bounce");
    let refund_amount = refund_wallet.balance();
    let stash = bank.open_account(0);
    let refund_tokens = refund_wallet.take_exact(refund_amount).unwrap();
    for t in &refund_tokens {
        bank.deposit(stash, t).unwrap();
    }
    let double = bank.deposit(stash, &refund_tokens[0]);
    assert_eq!(double, Err(DepositError::DoubleSpend));
    println!("    second deposit of the same serial: {double:?}");

    // --- conservation -------------------------------------------------------
    println!("[8] conservation: total deposits + outstanding tokens is constant");
    println!(
        "    total now: {} (started with 10000)",
        bank.total_deposits() + bank.outstanding()
    );
    assert_eq!(bank.total_deposits() + bank.outstanding(), 10_000);

    // --- audit chain --------------------------------------------------------
    println!("[9] audit: the hash-chained audit log verifies end-to-end");
    assert!(bank.ledger().audit().verify_chain());
    println!(
        "    {} chained entries, chain intact",
        bank.ledger().audit().len()
    );

    println!("\nAll cheating scenarios rejected; payments settled; initiator");
    println!("anonymity preserved (the bank never linked tokens to the withdrawal).");
}
