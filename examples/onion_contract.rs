//! Contract propagation and path validation, cryptographically (§2.2, §5).
//!
//! The initiator seals the `(P_f, P_r)` contract in onion layers so each
//! forwarder learns the terms without learning who initiated; on the
//! reverse path every forwarder appends a MAC'd path record, and the
//! initiator validates the chain before authorising payment.
//!
//! ```text
//! cargo run --release --example onion_contract
//! ```

use idpa::core::envelope::{
    decode_contract, encode_contract, peel_layer, seal_layers, validate_path, HopKey, PathRecord,
    PathValidationError,
};
use idpa::prelude::*;

fn main() {
    // The contract for a bundle toward responder n9.
    let contract = Contract::new(BundleId(17), NodeId(9), 75.0, 150.0);
    println!(
        "[1] contract: P_f={} P_r={} responder={}",
        contract.pf, contract.pr, contract.responder
    );

    // The initiator expects up to 3 hops; one key per hop position,
    // derived from the bundle secret.
    let bundle_secret = b"bundle-17-secret";
    let hop_keys: Vec<HopKey> = (0..3).map(|h| HopKey::derive(bundle_secret, h)).collect();

    // Seal: layered ChaCha20, outermost layer for the first hop.
    let sealed = seal_layers(&encode_contract(&contract), &hop_keys);
    println!(
        "[2] contract sealed in {} onion layers ({} bytes)",
        hop_keys.len(),
        sealed.len()
    );
    assert!(
        decode_contract(&sealed).is_none(),
        "sealed blob must be opaque"
    );

    // Each hop peels its own layer; only the last sees the plaintext.
    let after0 = peel_layer(&sealed, &hop_keys[0], 0);
    println!(
        "[3] hop 0 peeled its layer: readable = {}",
        decode_contract(&after0).is_some()
    );
    let after1 = peel_layer(&after0, &hop_keys[1], 1);
    println!(
        "    hop 1 peeled its layer: readable = {}",
        decode_contract(&after1).is_some()
    );
    let after2 = peel_layer(&after1, &hop_keys[2], 2);
    let recovered = decode_contract(&after2).expect("innermost layer is the contract");
    println!(
        "    hop 2 peeled its layer: readable = true -> P_f={} P_r={}",
        recovered.pf, recovered.pr
    );
    assert_eq!(recovered, contract);

    // Reverse path: the forwarders f=n3, n5, n7 each append a MAC'd record.
    let bundle_key = b"bundle-17-mac-key";
    let records: Vec<PathRecord> = [3usize, 5, 7]
        .iter()
        .enumerate()
        .map(|(hop, &node)| PathRecord::issue(bundle_key, 0, hop as u32, NodeId(node)))
        .collect();

    // The initiator recreates and validates the path before paying.
    let path = validate_path(&records, bundle_key).expect("honest chain validates");
    println!(
        "[4] initiator validated the path: I -> {} -> R",
        path.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // A malicious forwarder tries to splice itself out / divert credit.
    let mut tampered = records.clone();
    tampered[1].node = NodeId(4);
    match validate_path(&tampered, bundle_key) {
        Err(PathValidationError::BadMac { index }) => {
            println!("[5] tampered record detected at index {index}: payment withheld");
        }
        other => panic!("tampering must be detected, got {other:?}"),
    }

    // Dropping a hop breaks the chain.
    let dropped = vec![records[0].clone(), records[2].clone()];
    match validate_path(&dropped, bundle_key) {
        Err(PathValidationError::BrokenChain { expected_hop }) => {
            println!("[6] dropped hop detected (expected hop {expected_hop}): payment withheld");
        }
        other => panic!("drop must be detected, got {other:?}"),
    }

    println!("\nThe contract propagated without naming the initiator, and the");
    println!("initiator could still verify exactly who forwarded — the two");
    println!("properties §2.2 requires of route formation.");
}
