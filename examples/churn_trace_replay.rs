//! Measured-trace replay: export a churn trace, re-import it, and run the
//! incentive mechanism over it.
//!
//! The paper calibrates its synthetic churn to measurement studies
//! (Pareto sessions, 60-minute median). In a deployment study you would
//! replay *measured* traces instead; this example shows the workflow with
//! the CSV trace format (`idpa::netmodel::trace`), using an exported
//! synthetic trace as the stand-in measurement.
//!
//! ```text
//! cargo run --release --example churn_trace_replay
//! ```

use idpa::netmodel::{trace_from_csv, trace_to_csv};
use idpa::prelude::*;

fn main() {
    // [1] Produce a trace (in the field: collect it from a real overlay).
    let cfg = ScenarioConfig {
        adversary_fraction: 0.2,
        seed: 31,
        ..ScenarioConfig::default()
    };
    let world = World::generate(&cfg);
    let csv = trace_to_csv(&world.schedules);
    let sessions: usize = world.schedules.iter().map(|s| s.sessions().len()).sum();
    println!(
        "[1] exported churn trace: {} nodes, {} sessions, {} bytes of CSV",
        world.schedules.len(),
        sessions,
        csv.len()
    );

    // [2] Re-import it, as one would a measured trace file.
    let replayed = trace_from_csv(&csv, cfg.n_nodes).expect("trace parses");
    println!(
        "[2] re-imported trace parses and round-trips: {}",
        replayed == *world.schedules
    );

    // [3] Run the full mechanism over the replayed trace.
    let mut replay_world = world.clone();
    replay_world.schedules = replayed.into();
    let mut run = SimulationRun::new(cfg, replay_world);
    let mut engine = Engine::new();
    run.schedule_all(&mut engine);
    engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
    let result = run.finish();

    println!(
        "[3] replay run: {} connections, ‖π‖ = {:.1}, payoff = {:.1}, anonymity = {:.3}",
        result.connections,
        result.avg_forwarder_set,
        result.avg_good_payoff,
        result.avg_anonymity_degree
    );

    // [4] Availability summary of the trace, the quantity the §2.3
    // probing estimator tracks.
    let mut avail: Vec<f64> = world
        .schedules
        .iter()
        .map(idpa::netmodel::NodeSchedule::availability)
        .collect();
    avail.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "[4] trace availability: min {:.2}, median {:.2}, max {:.2}",
        avail.first().unwrap(),
        avail[avail.len() / 2],
        avail.last().unwrap()
    );
    println!(
        "\nTo export a trace for external tooling: cargo run -p idpa-sim -- trace-export [SEED]"
    );
}
