//! Fault matrix: every fault class crossed with every routing strategy.
//!
//! Exercises the deterministic fault-injection layer end to end — forwarder
//! crashes, per-edge drops and delays, confirmation cheating, and bank
//! outages — and prints how each routing strategy degrades: delivery ratio,
//! retries per message, reformation latency, payment shortfall, and the
//! cheaters flagged by reconstructed-path validation.
//!
//! ```text
//! cargo run --release --example fault_matrix
//! IDPA_FAULT_SMOKE=1 cargo run --release --example fault_matrix   # CI smoke
//! ```
//!
//! `IDPA_FAULT_SMOKE=1` (or `IDPA_SETTLE_SMOKE=1`) shrinks the matrix to
//! one severity per fault class at quick scale — a seconds-long end-to-end
//! pass for `scripts/verify.sh`. Every run is a pure function of
//! `(scenario seed, fault plan)`, so the numbers printed here are
//! bit-stable across machines and thread counts.
//!
//! The settlement section reruns the matrix under `--settlement epoch` and
//! asserts the economics are mode-invariant: payoffs, delivery, shortfall,
//! flags and audit discrepancies must match the per-bundle run exactly —
//! only the bank-facing operation counts and the delay model (an outage
//! stalls an epoch boundary instead of a bundle) may differ.

use idpa::prelude::*;

struct FaultClass {
    label: &'static str,
    fault: FaultConfig,
}

fn fault_classes(smoke: bool) -> Vec<FaultClass> {
    let base = FaultConfig::default();
    let mut classes = vec![
        FaultClass {
            label: "none",
            fault: base,
        },
        FaultClass {
            label: "crash 5%",
            fault: FaultConfig {
                crash_rate: 0.05,
                ..base
            },
        },
        FaultClass {
            label: "drop+delay",
            fault: FaultConfig {
                drop_rate: 0.1,
                delay_rate: 0.3,
                ..base
            },
        },
        FaultClass {
            label: "cheat 25%",
            fault: FaultConfig {
                cheat_fraction: 0.25,
                ..base
            },
        },
        FaultClass {
            label: "bank 30%",
            fault: FaultConfig {
                bank_downtime: 0.3,
                ..base
            },
        },
    ];
    if !smoke {
        classes.push(FaultClass {
            label: "compound",
            fault: FaultConfig {
                crash_rate: 0.03,
                drop_rate: 0.08,
                delay_rate: 0.2,
                cheat_fraction: 0.15,
                bank_downtime: 0.15,
                ..base
            },
        });
    }
    classes
}

fn main() {
    let smoke = ["IDPA_FAULT_SMOKE", "IDPA_SETTLE_SMOKE"]
        .iter()
        .any(|k| std::env::var(k).is_ok_and(|v| v == "1"));
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random ", RoutingStrategy::Random),
        ("model I", RoutingStrategy::Utility(UtilityModel::ModelI)),
        (
            "model II",
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
        ),
    ];
    let seed = 11;

    println!(
        "fault class | strategy | delivery | retries/msg | reform lat | shortfall | settle dly | flagged"
    );
    println!(
        "------------+----------+----------+-------------+------------+-----------+------------+--------"
    );
    for class in fault_classes(smoke) {
        for (label, strategy) in strategies {
            let scenario = if smoke {
                ScenarioConfig::quick_test(seed)
            } else {
                ScenarioConfig {
                    seed,
                    ..ScenarioConfig::default()
                }
            };
            let cfg = ScenarioConfig {
                good_strategy: strategy,
                adversary_fraction: 0.2,
                fault: class.fault,
                ..scenario
            };
            cfg.validate().expect("fault matrix scenario must be valid");
            let r = SimulationRun::execute(cfg);
            assert!(r.audit_chain_verified, "audit chain must verify");
            println!(
                "{:<11} | {label} | {:>8.3} | {:>11.3} | {:>10.2} | {:>9.2} | {:>10.2} | {:>7}",
                class.label,
                r.delivery_ratio,
                r.retries_per_message,
                r.reformation_latency,
                r.payment_shortfall,
                r.settlement_delay,
                r.flagged_cheaters.len(),
            );
            // The zero-fault row doubles as a regression tripwire: an
            // inactive fault plan must report a perfectly clean run.
            if class.label == "none" {
                assert_eq!(r.delivery_ratio, 1.0);
                assert_eq!(r.retries_per_message, 0.0);
                assert!(r.flagged_cheaters.is_empty());
            }
        }
    }
    println!();
    println!("expected shape: drops cost retries but bounded retransmission keeps");
    println!("delivery high; cheaters are flagged by path validation and show up as");
    println!("payment shortfall; bank outages touch settlement, never delivery.");

    // The same matrix under both settlement modes: epoch batching must be
    // economically invisible. Each row asserts cross-mode equality of the
    // payoff, delivery, shortfall, flag and audit metrics, then prints
    // what actually changed — the delay model and the amortized
    // bank-operation counts.
    println!();
    println!("fault class | dly/bundle | dly/epoch | epochs | ops/epoch | netting | batch thpt");
    println!("------------+------------+-----------+--------+-----------+---------+-----------");
    for class in fault_classes(smoke) {
        let scenario = if smoke {
            ScenarioConfig::quick_test(seed)
        } else {
            ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            }
        };
        let cfg = ScenarioConfig {
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
            adversary_fraction: 0.2,
            fault: class.fault,
            ..scenario
        };
        cfg.validate().expect("settlement matrix must be valid");
        let per_bundle = SimulationRun::execute(cfg);
        let epoch = SimulationRun::execute(ScenarioConfig {
            settlement: SettlementMode::Epoch,
            epoch_length: 240.0,
            ..cfg
        });
        assert_eq!(per_bundle.good_payoffs, epoch.good_payoffs);
        assert_eq!(per_bundle.node_totals, epoch.node_totals);
        assert_eq!(per_bundle.delivery_ratio, epoch.delivery_ratio);
        assert_eq!(per_bundle.retries_per_message, epoch.retries_per_message);
        assert_eq!(per_bundle.payment_shortfall, epoch.payment_shortfall);
        assert_eq!(per_bundle.flagged_cheaters, epoch.flagged_cheaters);
        assert_eq!(per_bundle.audit_discrepancies, epoch.audit_discrepancies);
        assert!(per_bundle.audit_chain_verified && epoch.audit_chain_verified);
        println!(
            "{:<11} | {:>10.2} | {:>9.2} | {:>6} | {:>9.1} | {:>7.1} | {:>10.1}",
            class.label,
            per_bundle.settlement_delay,
            epoch.settlement_delay,
            epoch.epochs_settled,
            epoch.settlement_ops_per_epoch,
            epoch.epoch_netting_ratio,
            epoch.batch_verify_throughput,
        );
    }
    println!();
    println!("expected shape: economics identical across modes (asserted); epoch rows");
    println!("amortize many receipts into few netted payouts and batched verifies,");
    println!("while outages now stall epoch boundaries, lengthening the settle delay.");

    // Static vs adaptive fault response under a compound load (crash +
    // drop + cheat — the regime where learned reputation has signal). The
    // adaptive arm runs the three-term quality model (w_r = 0.2) with
    // reputation suppression, in-run cheater feedback, crash-aware probe
    // invalidation and escalated reformation.
    let compound = FaultConfig {
        crash_rate: 0.05,
        drop_rate: 0.10,
        cheat_fraction: 0.25,
        ..FaultConfig::default()
    };
    println!();
    println!("response | delivery | retries/msg | reform lat | shortfall | flagged");
    println!("---------+----------+-------------+------------+-----------+--------");
    let mut deliveries = [0.0f64; 2];
    let arms: [(&str, FaultResponse, f64); 2] = [
        ("static  ", FaultResponse::Static, 0.0),
        ("adaptive", FaultResponse::Adaptive, 0.2),
    ];
    for (i, (label, response, wr)) in arms.into_iter().enumerate() {
        let scenario = if smoke {
            ScenarioConfig::quick_test(seed)
        } else {
            ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            }
        };
        let cfg = ScenarioConfig {
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
            adversary_fraction: 0.2,
            fault: FaultConfig {
                response,
                ..compound
            },
            weights: ((1.0 - wr) / 2.0, (1.0 - wr) / 2.0),
            reputation_weight: wr,
            ..scenario
        };
        cfg.validate()
            .expect("adaptive matrix scenario must be valid");
        let r = SimulationRun::execute(cfg);
        assert!(r.audit_chain_verified, "audit chain must verify");
        deliveries[i] = r.delivery_ratio;
        println!(
            "{label} | {:>8.3} | {:>11.3} | {:>10.2} | {:>9.2} | {:>7}",
            r.delivery_ratio,
            r.retries_per_message,
            r.reformation_latency,
            r.payment_shortfall,
            r.flagged_cheaters.len(),
        );
    }
    assert!(
        deliveries[1] >= deliveries[0],
        "adaptive response must not deliver less than static under compound faults \
         (static {}, adaptive {})",
        deliveries[0],
        deliveries[1]
    );
    println!();
    println!("expected shape: the adaptive arm routes around cheaters it has flagged");
    println!("or repeatedly timed out on, recovering delivery the static protocol");
    println!("loses to confirmation-swallowing cheats.");

    // Durable bank under seeded crashes: the WAL-backed ledger with a warm
    // failover replica must finish bit-identical to a crash-free run —
    // only the recovery counters may differ.
    println!();
    println!("bank crashes | WAL records | crashes | torn | replayed | monitor | digest match");
    println!("-------------+-------------+---------+------+----------+---------+-------------");
    for settlement in [SettlementMode::PerBundle, SettlementMode::Epoch] {
        let scenario = if smoke {
            ScenarioConfig::quick_test(seed)
        } else {
            ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            }
        };
        let cfg = ScenarioConfig {
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
            adversary_fraction: 0.2,
            settlement,
            bank_durability: BankDurability::Wal,
            fault: FaultConfig {
                drop_rate: 0.08,
                cheat_fraction: 0.2,
                bank_crash_rate: 0.5,
                ..FaultConfig::default()
            },
            ..scenario
        };
        cfg.validate().expect("durable-bank scenario must be valid");
        let calm = SimulationRun::execute(ScenarioConfig {
            fault: FaultConfig {
                bank_crash_rate: 0.0,
                ..cfg.fault
            },
            ..cfg
        });
        let stormy = SimulationRun::execute(cfg);
        assert!(stormy.audit_chain_verified, "bank audit chain must verify");
        assert_eq!(stormy.bank_monitor_violations, 0, "monitor must stay clean");
        assert_eq!(
            calm.bank_ledger_digest, stormy.bank_ledger_digest,
            "failover must not change the final ledger"
        );
        assert_eq!(calm.bank_wal_records, stormy.bank_wal_records);
        println!(
            "{:<12} | {:>11} | {:>7} | {:>4} | {:>8} | {:>7} | {}",
            match settlement {
                SettlementMode::PerBundle => "per-bundle",
                SettlementMode::Epoch => "epoch",
            },
            stormy.bank_wal_records,
            stormy.bank_crashes,
            stormy.bank_torn_tails,
            stormy.bank_records_replayed,
            stormy.bank_monitor_checks,
            calm.bank_ledger_digest == stormy.bank_ledger_digest,
        );
    }
    println!();
    println!("expected shape: crash-anywhere runs replay the intact WAL prefix into the");
    println!("warm replica and finish with the exact crash-free ledger digest; the");
    println!("invariant monitor reports zero violations throughout.");
}
