//! Quickstart: simulate the paper's default scenario and print the headline
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use idpa::prelude::*;

fn main() {
    // The paper's §3 setup: N = 40 peers, d = 5 neighbors, 100 (I, R)
    // pairs, 2000 transmissions, P_f ∈ [50, 100], τ = 1, w_s = w_a = 0.5,
    // Pareto sessions with a 60-minute median, 10% malicious nodes.
    let cfg = ScenarioConfig {
        adversary_fraction: 0.1,
        good_strategy: RoutingStrategy::Utility(UtilityModel::ModelI),
        seed: 2007,
        ..ScenarioConfig::default()
    };

    println!(
        "simulating: N={} d={} pairs={} transmissions={} f={}",
        cfg.n_nodes, cfg.degree, cfg.n_pairs, cfg.total_transmissions, cfg.adversary_fraction
    );

    let result = SimulationRun::execute(cfg);

    println!();
    println!("connections formed ........ {}", result.connections);
    println!(
        "avg path length L ......... {:.2} hops",
        result.avg_path_length
    );
    println!(
        "avg forwarder set ‖π‖ ..... {:.2} nodes",
        result.avg_forwarder_set
    );
    println!("path quality Q(π)=L/‖π‖ ... {:.3}", result.avg_path_quality);
    println!("avg good-node payoff ...... {:.1}", result.avg_good_payoff);
    println!(
        "routing efficiency ........ {:.1}",
        result.routing_efficiency
    );
    println!(
        "new-edge fraction E[X] .... {:.3}",
        result.new_edge_fraction
    );
    println!(
        "anonymity degree .......... {:.3}",
        result.avg_anonymity_degree
    );

    // Compare against the adversary baseline: random routing.
    let random = SimulationRun::execute(ScenarioConfig {
        good_strategy: RoutingStrategy::Random,
        adversary_fraction: 0.1,
        seed: 2007,
        ..ScenarioConfig::default()
    });
    println!();
    println!(
        "vs random routing: ‖π‖ {:.2} -> {:.2}, E[X] {:.3} -> {:.3}",
        random.avg_forwarder_set,
        result.avg_forwarder_set,
        random.new_edge_fraction,
        result.new_edge_fraction,
    );
    println!("(utility-driven routing keeps the forwarder set small and stable,");
    println!(" which is exactly what resists intersection attacks)");
}
