//! Adversary zoo: free riders, whitewashers, and colluding cliques.
//!
//! Exercises the deterministic adversary-strategy layer end to end — each
//! §4 strategy class runs with its matching defense off and on, and the
//! table shows what the defense buys:
//!
//! * **free riders** initiate connections but ghost every forwarding duty
//!   (Prop. 2's worst case) — the adaptive response learns to route around
//!   them;
//! * **whitewashers** accumulate faults, then rejoin as a fresh identity,
//!   clearing their reputation ledgers — identity-age discounting keeps
//!   fresh identities from instantly regaining full trust;
//! * **colluding cliques** pad their responder's manifest with phantom
//!   clique-mate hops and mint them genuine receipts — the initiator's
//!   cross-confirmation of observed forwarders flags the phantoms instead
//!   of paying them.
//!
//! ```text
//! cargo run --release --example adversary_zoo
//! IDPA_AZ_SMOKE=1 cargo run --release --example adversary_zoo   # CI smoke
//! ```
//!
//! Every run is a pure function of `(scenario seed, adversary plan)`, so
//! the numbers printed here are bit-stable across machines and thread
//! counts. All-zero adversary rates never construct the plan at all, so a
//! disabled zoo is byte-identical to a build without the layer.

use idpa::prelude::*;

fn scenario(seed: u64, smoke: bool) -> ScenarioConfig {
    if smoke {
        ScenarioConfig::quick_test(seed)
    } else {
        ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        }
    }
}

fn main() {
    let smoke = std::env::var("IDPA_AZ_SMOKE").is_ok_and(|v| v == "1");
    let seed = 11;
    let model_two = RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 });

    // Free riders: 20% of nodes ghost forwarding duty. The defense arm is
    // the adaptive response — reputation suppression plus probe
    // invalidation route around the ghosts.
    println!("free riders  | delivery | refusals | free-rider payoff | compliant payoff");
    println!("-------------+----------+----------+-------------------+-----------------");
    let mut free_rider_deliveries = [0.0f64; 2];
    for (i, (label, response)) in [
        ("defense off ", FaultResponse::Static),
        ("adaptive    ", FaultResponse::Adaptive),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = ScenarioConfig {
            good_strategy: model_two,
            adversary: AdversaryConfig {
                free_rider_fraction: 0.2,
                ..AdversaryConfig::default()
            },
            fault: FaultConfig {
                response,
                ..FaultConfig::default()
            },
            ..scenario(seed, smoke)
        };
        cfg.validate().expect("free-rider scenario must be valid");
        let r = SimulationRun::execute(cfg);
        assert!(r.audit_chain_verified, "audit chain must verify");
        free_rider_deliveries[i] = r.delivery_ratio;
        println!(
            "{label} | {:>8.3} | {:>8} | {:>17.1} | {:>16.1}",
            r.delivery_ratio, r.free_rider_refusals, r.free_rider_payoff, r.compliant_payoff,
        );
        // Prop. 2's economics: a node that never forwards never earns
        // forwarding payoff, under either response.
        assert_eq!(
            r.free_rider_payoff, 0.0,
            "free riders must earn zero forwarding payoff"
        );
        assert!(r.compliant_payoff > 0.0);
        assert!(!r.free_riders.is_empty());
    }
    assert!(
        free_rider_deliveries[1] >= free_rider_deliveries[0],
        "the adaptive response must not deliver less under free riding \
         (static {}, adaptive {})",
        free_rider_deliveries[0],
        free_rider_deliveries[1]
    );
    println!();

    // Whitewashers: 20% of nodes shed their identity every ~240 simulated
    // minutes against a background drop rate that gives the shed identity
    // a ledger worth escaping. The defense arm discounts the reputation
    // term by identity age (w_r = 0.5 so the discount reaches routing).
    println!("whitewashers | delivery | rejoins | ledgers archived | evasion rate");
    println!("-------------+----------+---------+------------------+-------------");
    for (label, discount) in [("defense off ", false), ("age discount", true)] {
        let cfg = ScenarioConfig {
            good_strategy: model_two,
            adversary: AdversaryConfig {
                whitewash_fraction: 0.2,
                whitewash_interval: 240.0,
                whitewash_age_discount: discount,
                reputation_maturity: 120.0,
                ..AdversaryConfig::default()
            },
            fault: FaultConfig {
                drop_rate: 0.2,
                response: FaultResponse::Adaptive,
                ..FaultConfig::default()
            },
            weights: (0.25, 0.25),
            reputation_weight: 0.5,
            ..scenario(seed, smoke)
        };
        cfg.validate().expect("whitewash scenario must be valid");
        let r = SimulationRun::execute(cfg);
        assert!(r.audit_chain_verified, "audit chain must verify");
        println!(
            "{label} | {:>8.3} | {:>7} | {:>16} | {:>12.3}",
            r.delivery_ratio,
            r.whitewash_events,
            r.whitewash_events, // one archive sweep per rejoin
            r.reputation_evasion_rate,
        );
        assert!(r.whitewash_events > 0, "the rejoin schedule must fire");
    }
    println!();

    // Colluding cliques: two 4-cliques forge phantom-forwarding evidence
    // on every connection their responder completes. The defense arm is
    // the initiator's cross-confirmation check.
    println!("cliques      | delivery | injected | flagged | payout leakage");
    println!("-------------+----------+----------+---------+---------------");
    for (label, cross_check) in [("defense off ", false), ("cross-check ", true)] {
        let cfg = ScenarioConfig {
            good_strategy: model_two,
            adversary: AdversaryConfig {
                clique_count: 2,
                clique_size: 4,
                clique_forge_rate: 1.0,
                clique_cross_check: cross_check,
                ..AdversaryConfig::default()
            },
            ..scenario(seed, smoke)
        };
        cfg.validate().expect("clique scenario must be valid");
        let r = SimulationRun::execute(cfg);
        assert!(r.audit_chain_verified, "audit chain must verify");
        println!(
            "{label} | {:>8.3} | {:>8} | {:>7} | {:>14.3}",
            r.delivery_ratio,
            r.clique_phantom_instances,
            r.clique_phantom_flagged,
            r.clique_payout_leakage,
        );
        assert!(r.clique_phantom_instances > 0, "the forgery must fire");
        if cross_check {
            // The acceptance bar: the cross-confirmation check must flag
            // at least 90% of phantom-forwarding payouts.
            assert!(
                r.clique_phantom_flagged as f64 >= 0.9 * r.clique_phantom_instances as f64,
                "cross-check must flag >= 90% of phantoms ({}/{})",
                r.clique_phantom_flagged,
                r.clique_phantom_instances
            );
        } else {
            assert_eq!(
                r.clique_phantom_flagged, 0,
                "without the cross-check every phantom is paid"
            );
        }
    }
    println!();
    println!("expected shape: free riders earn nothing (Prop. 2) and the adaptive");
    println!("response recovers the delivery they cost; whitewash rejoins archive the");
    println!("shed ledgers, and age discounting curbs the fresh identity's trust;");
    println!("the cross-confirmation check turns clique payout leakage into flags.");
}
