//! Recurring web sessions under an intersection attack.
//!
//! The paper's motivating application (§1, §2.1): protocols like HTTP make
//! *recurring* connections from an initiator to a fixed set of responders,
//! and every path reformation gives a passive observer another active-set
//! observation to intersect. This example models one user browsing a site
//! daily for a month through the overlay and reports how far an
//! intersection attacker narrows the candidate-initiator set under random
//! vs incentive-driven routing.
//!
//! ```text
//! cargo run --release --example recurring_web_sessions
//! ```

use idpa::core::adversary::IntersectionAttack;
use idpa::core::metrics::candidate_set_degree;
use idpa::prelude::*;
use std::collections::HashSet;

fn attack_outcome(strategy: RoutingStrategy, label: &str) {
    // One pair (the user and the web server), 30 recurring connections,
    // 30% of peers are colluding observers that route randomly.
    let mut cfg = ScenarioConfig {
        n_pairs: 1,
        total_transmissions: 30,
        max_connections: 30,
        adversary_fraction: 0.3,
        good_strategy: strategy,
        seed: 7,
        ..ScenarioConfig::default()
    };
    cfg.churn.horizon = 30.0 * 24.0 * 60.0; // a month of daily sessions
    cfg.warmup = 120.0;

    let world = World::generate(&cfg);
    let user = world.pairs[0].initiator;

    let result = SimulationRun::execute(cfg);

    println!("--- {label} ---");
    println!("user node ................. {user}");
    println!(
        "forwarder set ‖π‖ ......... {:.0}",
        result.avg_forwarder_set
    );
    println!("path reformation rate ..... {:.2}", result.reformation_rate);
    println!(
        "anonymity degree left ..... {:.3}  (1 = attacker learned nothing)",
        result.avg_anonymity_degree
    );
    println!(
        "initiator exposed ......... {}",
        if result.attack_exposure_rate > 0.0 {
            "YES"
        } else {
            "no"
        }
    );
    println!();
}

fn main() {
    println!("Recurring HTTP sessions: one user, one site, 30 daily visits,");
    println!("30% of peers are passive observers.\n");

    attack_outcome(RoutingStrategy::Random, "random routing (baseline)");
    attack_outcome(
        RoutingStrategy::Utility(UtilityModel::ModelI),
        "incentive-driven routing (utility model I)",
    );
    attack_outcome(
        RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
        "incentive-driven routing (utility model II)",
    );

    // The mechanics, in miniature: each observation intersects the set of
    // currently-active nodes; fewer distinct observations leave more
    // candidates.
    println!("--- why reformations matter (toy intersection) ---");
    let everyone: Vec<usize> = (0..40).collect();
    let mut stable = IntersectionAttack::new();
    let mut churny = IntersectionAttack::new();
    // The stable path is observed twice; the churny one ten times, each
    // with a different random half of the network online.
    let actives: Vec<HashSet<NodeId>> = (0..10)
        .map(|round| {
            let mut s: HashSet<NodeId> = everyone
                .iter()
                .filter(|&&n| (n + round) % 2 == 0)
                .map(|&n| NodeId(n))
                .collect();
            s.insert(NodeId(0)); // the true initiator is always online
            s
        })
        .collect();
    for a in actives.iter().take(2) {
        stable.observe(a);
    }
    for a in &actives {
        churny.observe(a);
    }
    println!(
        "2 observations: {} candidates (degree {:.2})",
        stable.candidate_count(),
        candidate_set_degree(stable.candidate_count().min(40), 40)
    );
    println!(
        "10 observations: {} candidates (degree {:.2})",
        churny.candidate_count(),
        candidate_set_degree(churny.candidate_count().min(40), 40)
    );
}
