//! Sweep the malicious-node fraction `f` and watch the incentive
//! mechanism degrade gracefully — a command-line miniature of the paper's
//! Figures 3 and 5.
//!
//! ```text
//! cargo run --release --example adversary_sweep
//! ```

use idpa::prelude::*;

fn main() {
    println!("f     | payoff (model I) | ‖π‖ model I | ‖π‖ random | anonymity");
    println!("------+------------------+-------------+------------+----------");
    for step in 0..=9 {
        let f = f64::from(step) / 10.0;
        let utility = SimulationRun::execute(ScenarioConfig {
            adversary_fraction: f,
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelI),
            seed: 11,
            ..ScenarioConfig::default()
        });
        let random = SimulationRun::execute(ScenarioConfig {
            adversary_fraction: f,
            good_strategy: RoutingStrategy::Random,
            seed: 11,
            ..ScenarioConfig::default()
        });
        println!(
            "{f:.1}   | {:>16.1} | {:>11.1} | {:>10.1} | {:>8.3}",
            utility.avg_good_payoff,
            utility.avg_forwarder_set,
            random.avg_forwarder_set,
            utility.avg_anonymity_degree,
        );
    }
    println!();
    println!("expected shape (paper Figs. 3 & 5): payoff decreases with f; the");
    println!("utility-routing forwarder set stays well below random routing's.");
}
