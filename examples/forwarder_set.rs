//! The paper's Figure 1 vs Figure 2, executable.
//!
//! Figure 1: random routing (plus one unavailable node) scatters the
//! recurring connections over a *large* forwarder set — every forwarder's
//! routing-benefit share shrinks to `P_r/‖π‖` with big `‖π‖`.
//! Figure 2: quality-driven routing keeps a *stable* set of forwarders, so
//! each one collects both more forwarding instances and a larger share.
//!
//! ```text
//! cargo run --release --example forwarder_set
//! ```

use idpa::prelude::*;

/// A static view over a fixed small overlay (no churn): node 0 is the
/// initiator I, node 9 the responder R, everyone else a potential
/// forwarder with uniform availability estimates.
struct StaticView {
    neighbors: Vec<Vec<NodeId>>,
}

impl RoutingView for StaticView {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        self.neighbors[s.index()].clone()
    }
    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        // Mild asymmetry so the utility maximiser has a stable argmax.
        0.3 + 0.05 * ((s.index() * 3 + v.index() * 7) % 10) as f64 / 10.0
    }
    fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
        1.0
    }
    fn participation_cost(&self, _: NodeId) -> f64 {
        2.0
    }
}

fn run(strategy: RoutingStrategy, label: &str) {
    let n = 10;
    let view = StaticView {
        neighbors: (0..n)
            .map(|i| {
                (1..=3)
                    .map(|d| NodeId((i + d) % n))
                    .filter(|v| v.index() != i)
                    .collect()
            })
            .collect(),
    };
    let contract = Contract::new(BundleId(0), NodeId(9), 50.0, 100.0);
    let mut histories: Vec<HistoryProfile> =
        (0..n).map(|i| HistoryProfile::new(NodeId(i))).collect();
    let kinds = vec![NodeKind::Good; n];
    let quality = EdgeQuality::new(Weights::balanced());
    let policy = PathPolicy::new(0.7, 5);
    let mut rng = StreamFactory::new(99).stream(label);

    let mut bundle = BundleAccounting::new();
    let k = 8;
    for conn in 0..k {
        let out = form_connection(
            NodeId(0),
            conn,
            &contract,
            bundle.connections(),
            &view,
            &mut histories,
            &kinds,
            &quality,
            strategy,
            &policy,
            &mut rng,
        );
        let hops: Vec<String> = out.forwarders.iter().map(ToString::to_string).collect();
        println!("  π^{conn}: I -> {} -> R", hops.join(" -> "));
        bundle.record_connection(&out.forwarders, &out.hop_costs);
    }

    let set = bundle.forwarder_set_size();
    println!("  forwarder set ‖π‖ = {set} over {k} connections");
    println!(
        "  routing-benefit share per forwarder: P_r/‖π‖ = {:.1}",
        contract.pr / set as f64
    );
    let best = bundle
        .forwarder_set()
        .into_iter()
        .map(|f| (f, bundle.gross_benefit(f, contract.pf, contract.pr)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "  best-paid forwarder: {} with gross benefit {:.1} (m = {})",
        best.0,
        best.1,
        bundle.instances(best.0)
    );
    println!();
}

fn main() {
    println!("=== Figure 1: random routing scatters the forwarder set ===");
    run(RoutingStrategy::Random, "random");

    println!("=== Figure 2: utility-driven routing keeps it stable ===");
    run(RoutingStrategy::Utility(UtilityModel::ModelI), "utility");

    println!("The routing benefit P_r = 100 is shared over the forwarder set:");
    println!("a scattered set (paper's P_r/8) pays each forwarder far less than");
    println!("a stable one (paper's P_r/3) — that differential is the incentive.");
}
